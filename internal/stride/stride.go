// Package stride implements a stride/congruence abstract domain after
// Granger: an element describes the values v ≡ R (mod M) inside the
// width-w window [0, 2^w). The lattice join is Euclid's gcd, the meet is
// the Chinese Remainder Theorem (exact, in particular for emptiness —
// what the consistency lint relies on), and the arithmetic transfer
// functions stay sound under wraparound by cutting the modulus down to
// gcd(M, 2^w) whenever a computation can wrap.
package stride

import (
	"fmt"
	"math/big"
	"math/bits"

	"dfcheck/internal/apint"
)

// S is one congruence element at width W:
//
//   - Empty set:  Empty == true (the lattice bottom);
//   - singleton:  M == 0, the set {R} with R < 2^W;
//   - congruence: M ≥ 1, the set {v ∈ [0, 2^W) : v ≡ R (mod M)} with
//     0 ≤ R < M and at least two members (R + M < 2^W).
//
// The constructors keep elements canonical, so distinct representations
// describe distinct sets and structural equality is semantic equality.
// Top is (R=0, M=1).
type S struct {
	W     uint
	R, M  uint64
	Empty bool
}

// Top is the full set at width w.
func Top(w uint) S { return S{W: w, R: 0, M: 1} }

// Bottom is the empty set at width w.
func Bottom(w uint) S { return S{W: w, Empty: true} }

// Const is the singleton {v}.
func Const(v apint.Int) S { return S{W: v.Width(), R: v.Uint64()} }

// limit returns 2^w - 1.
func limit(w uint) uint64 { return ^uint64(0) >> (64 - w) }

// Make canonicalizes a congruence v ≡ r (mod m) into the width-w window:
// the residue is reduced, a progression with fewer than two members in
// the window collapses to a singleton (or to empty when even the first
// member is outside it).
func Make(w uint, r, m uint64) S {
	if m != 0 {
		r %= m
	}
	if r > limit(w) {
		return Bottom(w)
	}
	if m == 0 || m > limit(w)-r {
		return S{W: w, R: r}
	}
	return S{W: w, R: r, M: m}
}

// IsConst reports whether the element is a singleton.
func (s S) IsConst() bool { return !s.Empty && s.M == 0 }

// IsTop reports whether the element is the full set.
func (s S) IsTop() bool { return !s.Empty && s.M == 1 }

// Contains reports v ∈ γ(s).
func (s S) Contains(v apint.Int) bool {
	switch {
	case s.Empty:
		return false
	case s.M == 0:
		return v.Uint64() == s.R
	}
	return v.Uint64()%s.M == s.R
}

// Min returns the smallest member; meaningless on empty elements.
func (s S) Min() uint64 { return s.R }

// Max returns the largest member; meaningless on empty elements.
func (s S) Max() uint64 {
	if s.M == 0 {
		return s.R
	}
	return s.R + (limit(s.W)-s.R)/s.M*s.M
}

// Size returns the member count.
func (s S) Size() uint64 {
	switch {
	case s.Empty:
		return 0
	case s.M == 0:
		return 1
	}
	return (limit(s.W)-s.R)/s.M + 1
}

// Eq reports semantic equality (canonical elements compare structurally).
func (s S) Eq(o S) bool { return s == o }

// Leq reports γ(s) ⊆ γ(o). For canonical non-singletons inclusion
// coincides with divisibility: the first two members of s pin both the
// residue and the stride modulo o's.
func (s S) Leq(o S) bool {
	switch {
	case s.Empty:
		return true
	case o.Empty:
		return false
	case s.M == 0:
		return o.Contains(apint.New(s.W, s.R))
	case o.M == 0:
		return false // s has two members, o one
	}
	return s.M%o.M == 0 && s.R%o.M == o.R
}

// Join is the least upper bound: the finest congruence containing both
// sides, via gcd over the strides and the residue difference.
func (s S) Join(o S) S {
	switch {
	case s.Empty:
		return o
	case o.Empty:
		return s
	}
	d := s.R - o.R
	if o.R > s.R {
		d = o.R - s.R
	}
	g := gcd(gcd(s.M, o.M), d)
	if g == 0 {
		return s // two identical singletons
	}
	return Make(s.W, s.R%g, g)
}

// Meet is the greatest lower bound, exact on concretizations: the
// Chinese Remainder Theorem decides whether the two congruences share a
// solution and what the combined modulus is.
func (s S) Meet(o S) S {
	switch {
	case s.Empty || o.Empty:
		return Bottom(s.W)
	case s.M == 0:
		if o.Contains(apint.New(s.W, s.R)) {
			return s
		}
		return Bottom(s.W)
	case o.M == 0:
		if s.Contains(apint.New(s.W, o.R)) {
			return o
		}
		return Bottom(s.W)
	}
	g := gcd(s.M, o.M)
	d := s.R - o.R
	if o.R > s.R {
		d = o.R - s.R
	}
	if d%g != 0 {
		return Bottom(s.W)
	}
	// Solve v ≡ s.R (mod s.M), v ≡ o.R (mod o.M) with big integers: the
	// lcm can exceed 64 bits at width 64, and this is a cold path.
	m1, m2 := new(big.Int).SetUint64(s.M), new(big.Int).SetUint64(o.M)
	bg := new(big.Int).SetUint64(g)
	lcm := new(big.Int).Div(new(big.Int).Mul(m1, m2), bg)
	// v = s.R + s.M · t with t ≡ (o.R - s.R)/g · inv(s.M/g) (mod o.M/g).
	m2g := new(big.Int).Div(m2, bg)
	diff := new(big.Int).Sub(new(big.Int).SetUint64(o.R), new(big.Int).SetUint64(s.R))
	diff.Div(diff, bg)
	inv := new(big.Int).ModInverse(new(big.Int).Div(m1, bg), m2g)
	if inv == nil { // o.M/g == 1: the first congruence already decides
		inv = big.NewInt(0)
	}
	t := new(big.Int).Mul(diff, inv)
	t.Mod(t, m2g)
	v := new(big.Int).Mul(new(big.Int).SetUint64(s.M), t)
	v.Add(v, new(big.Int).SetUint64(s.R))
	v.Mod(v, lcm)
	lim := new(big.Int).SetUint64(limit(s.W))
	if v.Cmp(lim) > 0 {
		return Bottom(s.W)
	}
	if !lcm.IsUint64() {
		return S{W: s.W, R: v.Uint64()} // one member at most in the window
	}
	return Make(s.W, v.Uint64(), lcm.Uint64())
}

// Abstract returns α(vs): the finest congruence containing every value
// (gcd of the pairwise differences), empty for the empty set.
func Abstract(w uint, vs []apint.Int) S {
	if len(vs) == 0 {
		return Bottom(w)
	}
	v0 := vs[0].Uint64()
	g := uint64(0)
	for _, v := range vs[1:] {
		d := v.Uint64() - v0
		if v0 > v.Uint64() {
			d = v0 - v.Uint64()
		}
		g = gcd(g, d)
	}
	if g == 0 {
		return S{W: w, R: v0}
	}
	return Make(w, v0%g, g)
}

// Enum enumerates every canonical non-empty element at width w
// (2^w singletons plus 4^(w-1) true progressions), stopping early if fn
// returns false.
func Enum(w uint, fn func(S) bool) {
	lim := limit(w)
	for r := uint64(0); ; r++ {
		if !fn(S{W: w, R: r}) {
			return
		}
		if r == lim {
			break
		}
	}
	for m := uint64(1); m <= lim; m++ {
		for r := uint64(0); r < m && r <= lim-m; r++ {
			if !fn(S{W: w, R: r, M: m}) {
				return
			}
		}
	}
}

// String renders the element the way reports print it.
func (s S) String() string {
	switch {
	case s.Empty:
		return "empty"
	case s.M == 0:
		return fmt.Sprintf("{%d}", s.R)
	case s.M == 1:
		return "full"
	}
	return fmt.Sprintf("%d (mod %d)", s.R, s.M)
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pow2Cut returns gcd(m, 2^w) = 2^min(tz(m), w) for m ≥ 1: the modulus a
// congruence survives reduction modulo 2^w with. Computed from trailing
// zeros, so it never overflows even at width 64.
func pow2Cut(m uint64, w uint) uint64 {
	tz := uint(bits.TrailingZeros64(m))
	if tz > w {
		tz = w
	}
	if tz >= 64 {
		tz = 63 // unreachable for m ≥ 1 at w ≤ 64, defensive
	}
	return uint64(1) << tz
}
