package stride

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// gammaMask returns γ(s) as a bitset (width ≤ 6, so 2^w ≤ 64 values).
func gammaMask(s S) uint64 {
	var out uint64
	for x, max := uint64(0), uint64(1)<<s.W; x < max; x++ {
		if s.Contains(apint.New(s.W, x)) {
			out |= 1 << x
		}
	}
	return out
}

func enumAll(w uint) []S {
	var out []S
	Enum(w, func(s S) bool { out = append(out, s); return true })
	return out
}

func gammaVals(s S) []apint.Int {
	var out []apint.Int
	for x, max := uint64(0), uint64(1)<<s.W; x < max; x++ {
		if v := apint.New(s.W, x); s.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// TestEnumCanonical pins the element count (2^w singletons plus 4^(w-1)
// true progressions) and checks the enumeration yields pairwise distinct
// sets — the canonical-form invariant the absint law suite relies on.
func TestEnumCanonical(t *testing.T) {
	want := map[uint]int{1: 3, 2: 8, 3: 24, 4: 80}
	for w := uint(1); w <= 4; w++ {
		es := enumAll(w)
		if len(es) != want[w] {
			t.Errorf("w=%d: %d elements enumerated, want %d", w, len(es), want[w])
		}
		seen := map[uint64]S{}
		for _, s := range es {
			g := gammaMask(s)
			if g == 0 {
				t.Fatalf("w=%d: enumerated element %s is empty", w, s)
			}
			if prev, dup := seen[g]; dup {
				t.Fatalf("w=%d: %s and %s denote the same set", w, prev, s)
			}
			seen[g] = s
		}
	}
}

// TestLatticeExhaustive checks Leq/Join/Meet against γ-inclusion on every
// pair at widths up to 3: Leq is exactly inclusion, Join is sound AND
// least among enumerated upper bounds, Meet is exact (the property the
// reduced-product consistency lint depends on).
func TestLatticeExhaustive(t *testing.T) {
	for w := uint(1); w <= 3; w++ {
		es := enumAll(w)
		for _, a := range es {
			ga := gammaMask(a)
			for _, b := range es {
				gb := gammaMask(b)
				if got, want := a.Leq(b), ga&^gb == 0; got != want {
					t.Fatalf("w=%d: Leq(%s, %s) = %t, γ-inclusion says %t", w, a, b, got, want)
				}
				j := a.Join(b)
				gj := gammaMask(j)
				if (ga|gb)&^gj != 0 {
					t.Fatalf("w=%d: Join(%s, %s) = %s misses members", w, a, b, j)
				}
				for _, e := range es {
					ge := gammaMask(e)
					if ga&^ge == 0 && gb&^ge == 0 && !j.Leq(e) {
						t.Fatalf("w=%d: Join(%s, %s) = %s is not least (%s is a smaller bound)", w, a, b, j, e)
					}
				}
				m := a.Meet(b)
				gm := gammaMask(m)
				if gm != ga&gb {
					t.Fatalf("w=%d: Meet(%s, %s) = %s (γ %b), want exact %b", w, a, b, m, gm, ga&gb)
				}
			}
		}
		if !Bottom(w).Empty || gammaMask(Bottom(w)) != 0 {
			t.Fatalf("w=%d: Bottom is not empty", w)
		}
		if gammaMask(Top(w)) != (uint64(1)<<(1<<w))-1 {
			t.Fatalf("w=%d: Top is not full", w)
		}
	}
}

// TestAbstractLeast: α of every nonempty subset contains the subset and
// is below every enumerated element that also contains it.
func TestAbstractLeast(t *testing.T) {
	const w = 3
	es := enumAll(w)
	for set := uint64(1); set < 1<<(1<<w); set++ {
		var vs []apint.Int
		for x := uint64(0); x < 1<<w; x++ {
			if set&(1<<x) != 0 {
				vs = append(vs, apint.New(w, x))
			}
		}
		al := Abstract(w, vs)
		ga := gammaMask(al)
		if set&^ga != 0 {
			t.Fatalf("α(%b) = %s misses members", set, al)
		}
		for _, e := range es {
			if ge := gammaMask(e); set&^ge == 0 && !al.Leq(e) {
				t.Fatalf("α(%b) = %s is not least (%s also contains the set)", set, al, e)
			}
		}
	}
	if !Abstract(w, nil).Empty {
		t.Fatalf("α(∅) is not bottom")
	}
}

// TestTransferSoundnessExhaustive grades the whole transfer suite against
// the enumerated concrete image at widths 1..3: no concrete result of a
// well-defined execution may escape the abstract output, and a bottom
// output is only allowed when no execution is well defined. Widths 2 and
// 3 exercise the wraparound modulus cuts in add/sub/mul/shl.
func TestTransferSoundnessExhaustive(t *testing.T) {
	an := Analysis{}
	for w := uint(1); w <= 3; w++ {
		for _, op := range ir.AllOps() {
			if op == ir.OpBSwap {
				continue // byte widths only
			}
			valid := op.ValidFlags()
			for flags := ir.Flags(0); flags < 8; flags++ {
				if flags&^valid != 0 {
					continue
				}
				if op.IsCast() {
					for small := uint(1); small < w; small++ {
						if op == ir.OpTrunc {
							checkOp(t, an, op, flags, w, small, []uint{w})
						} else {
							checkOp(t, an, op, flags, small, w, []uint{small})
						}
					}
					continue
				}
				dstW := w
				if op.HasBoolResult() {
					dstW = 1
				}
				ws := make([]uint, op.Arity())
				for i := range ws {
					ws[i] = w
				}
				if op == ir.OpSelect {
					ws[0] = 1
				}
				checkOp(t, an, op, flags, w, dstW, ws)
			}
		}
	}
}

func checkOp(t *testing.T, an Analysis, op ir.Op, flags ir.Flags, w, dstW uint, ws []uint) {
	t.Helper()
	lists := make([][]S, len(ws))
	for i, opw := range ws {
		lists[i] = enumAll(opw)
	}
	idx := make([]int, len(ws))
	args := make([]S, len(ws))
	vals := make([]apint.Int, len(ws))
	for {
		for i := range idx {
			args[i] = lists[i][idx[i]]
		}
		got := an.Transfer(op, flags, dstW, args)
		var image uint64
		live := false
		var walk func(i int)
		walk = func(i int) {
			if i == len(args) {
				if v, ok := eval.ConstFold(op, flags, dstW, vals); ok {
					live = true
					image |= 1 << v.Uint64()
				}
				return
			}
			for _, v := range gammaVals(args[i]) {
				vals[i] = v
				walk(i + 1)
			}
		}
		walk(0)
		if live {
			if got.Empty {
				t.Fatalf("%s%s i%d→i%d on %v: live tuple graded bottom", op, flags, w, dstW, args)
			}
			if image&^gammaMask(got) != 0 {
				t.Fatalf("%s%s i%d→i%d on %v: output %s misses image %b", op, flags, w, dstW, args, got, image)
			}
		}
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(lists[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// TestWideArithmetic spot-checks the wraparound cuts at width 64, where
// the uint64 edge cases (overflowing products, full-window strides) live.
func TestWideArithmetic(t *testing.T) {
	an := Analysis{}
	w := uint(64)
	// 8·k + 3 added to 12·k + 5: residue survives modulo gcd(8,12)=4 but
	// the sum wraps, so the modulus must cut to gcd(4, 2^64) = 4.
	a, b := Make(w, 3, 8), Make(w, 5, 12)
	got := an.Transfer(ir.OpAdd, 0, w, []S{a, b})
	if got.M != 4 || got.R != 0 {
		t.Fatalf("add = %s, want 0 (mod 4)", got)
	}
	// Odd stride times odd stride wraps: everything collapses to top.
	got = an.Transfer(ir.OpMul, 0, w, []S{Make(w, 0, 3), Make(w, 0, 5)})
	if !got.IsTop() {
		t.Fatalf("wrapping odd mul = %s, want full", got)
	}
	// Even strides keep their power-of-two part through a wrapping mul.
	got = an.Transfer(ir.OpMul, 0, w, []S{Make(w, 0, 6), Make(w, 0, 10)})
	if got.M != 4 || got.R != 0 {
		t.Fatalf("wrapping even mul = %s, want 0 (mod 4)", got)
	}
	x, y := uint64(6)<<40, uint64(10)<<30
	for _, v := range []uint64{0, 6 * 10, x * y} { // the product wraps mod 2^64

		if !got.Contains(apint.New(w, v)) {
			t.Fatalf("wrapping even mul misses %d", v)
		}
	}
}
