// Package tnum implements the eBPF verifier's tristate-number abstract
// domain (Vishwanathan, Shachnai, Narayana, Nagarakatte: "Sound, Precise,
// and Fast Abstract Interpretation with Tristate Numbers"): a value/mask
// pair in which every bit of a width-w integer is known-zero, known-one,
// or unknown. The concretization is
//
//	γ(⟨value, mask⟩) = { v : v &^ mask == value }
//
// for well-formed pairs (value & mask == 0); a pair with value & mask ≠ 0
// is the synthetic bottom with empty concretization. The domain is
// structurally the same lattice as internal/knownbits (zero = ^(value |
// mask), one = value) but carries its own transfer-function suite — the
// verified algorithms of the tnum paper rather than the LLVM-8
// ValueTracking port — so the two make an ideal differential pair.
package tnum

import (
	"strings"

	"dfcheck/internal/apint"
	"dfcheck/internal/knownbits"
)

// T is one tristate number. Value holds the known-one bits, Mask the
// unknown bits; bits in neither are known zero. Well-formed elements
// satisfy Value & Mask == 0; anything else is bottom.
type T struct {
	Value, Mask apint.Int
}

// Make builds a tnum from a value and a mask without normalization: a
// pair with overlapping value and mask bits is bottom.
func Make(value, mask apint.Int) T { return T{Value: value, Mask: mask} }

// Const is the singleton {v}.
func Const(v apint.Int) T { return T{Value: v, Mask: apint.Zero(v.Width())} }

// Top is the unconstrained width-w tnum (every bit unknown).
func Top(w uint) T { return T{Value: apint.Zero(w), Mask: apint.AllOnes(w)} }

// Bottom is the canonical empty-concretization element at width w.
func Bottom(w uint) T { return T{Value: apint.AllOnes(w), Mask: apint.AllOnes(w)} }

// Width returns the bit width.
func (t T) Width() uint { return t.Value.Width() }

// IsBottom reports whether γ(t) is empty (value and mask overlap).
func (t T) IsBottom() bool { return !t.Value.And(t.Mask).IsZero() }

// IsTop reports whether every bit is unknown.
func (t T) IsTop() bool { return t.Value.IsZero() && t.Mask.IsAllOnes() }

// IsConst reports whether γ(t) is a singleton.
func (t T) IsConst() bool { return t.Mask.IsZero() }

// Contains reports v ∈ γ(t).
func (t T) Contains(v apint.Int) bool {
	return !t.IsBottom() && v.And(t.Mask.Not()).Eq(t.Value)
}

// UMin returns the smallest member of γ(t) (unknown bits all zero).
// Meaningless on bottom.
func (t T) UMin() apint.Int { return t.Value }

// UMax returns the largest member of γ(t) (unknown bits all one).
// Meaningless on bottom.
func (t T) UMax() apint.Int { return t.Value.Or(t.Mask) }

// Eq reports structural equality; all bottoms are identified.
func (t T) Eq(o T) bool {
	if t.IsBottom() || o.IsBottom() {
		return t.IsBottom() && o.IsBottom()
	}
	return t.Value.Eq(o.Value) && t.Mask.Eq(o.Mask)
}

// Leq reports γ(t) ⊆ γ(o): every bit o knows, t must know with the same
// value.
func (t T) Leq(o T) bool {
	switch {
	case t.IsBottom():
		return true
	case o.IsBottom():
		return false
	}
	// t's unknown bits must be unknown in o, and the bits known in both
	// must agree (o's knowledge is a subset of t's).
	return t.Mask.And(o.Mask.Not()).IsZero() &&
		t.Value.Xor(o.Value).And(o.Mask.Not()).IsZero()
}

// Union is the lattice join: bits that disagree or are unknown on either
// side become unknown.
func (t T) Union(o T) T {
	switch {
	case t.IsBottom():
		return o
	case o.IsBottom():
		return t
	}
	mu := t.Mask.Or(o.Mask).Or(t.Value.Xor(o.Value))
	return T{Value: t.Value.And(mu.Not()), Mask: mu}
}

// Intersect is the lattice meet, exact on concretizations: the result
// knows every bit either side knows, and is bottom exactly when two known
// bits disagree (γ(t) ∩ γ(o) = ∅).
func (t T) Intersect(o T) T {
	switch {
	case t.IsBottom() || o.IsBottom():
		return Bottom(t.Width())
	}
	known := t.Mask.Not().Or(o.Mask.Not())
	if !t.Value.Xor(o.Value).And(t.Mask.Not()).And(o.Mask.Not()).IsZero() {
		return Bottom(t.Width())
	}
	return T{Value: t.Value.Or(o.Value), Mask: known.Not()}
}

// Abstract returns α(vs): the least tnum containing every value of vs
// (bottom for the empty set).
func Abstract(w uint, vs []apint.Int) T {
	if len(vs) == 0 {
		return Bottom(w)
	}
	mu := apint.Zero(w)
	for _, v := range vs[1:] {
		mu = mu.Or(v.Xor(vs[0]))
	}
	return T{Value: vs[0].And(mu.Not()), Mask: mu}
}

// FromKnownBits converts a knownbits element (conflicted elements map to
// bottom).
func FromKnownBits(k knownbits.Bits) T {
	if k.HasConflict() {
		return Bottom(k.Width())
	}
	return T{Value: k.One, Mask: k.Zero.Or(k.One).Not()}
}

// KnownBits converts to the structurally equivalent knownbits element.
func (t T) KnownBits() knownbits.Bits {
	if t.IsBottom() {
		return knownbits.Make(apint.AllOnes(t.Width()), apint.AllOnes(t.Width()))
	}
	return knownbits.Make(t.Value.Or(t.Mask).Not(), t.Value)
}

// Enum enumerates every well-formed tnum at width w (3^w elements),
// stopping early if fn returns false.
func Enum(w uint, fn func(T) bool) {
	// Ternary counter: each bit is known-zero, known-one, or unknown.
	digits := make([]byte, w)
	for {
		var value, mask uint64
		for i, d := range digits {
			switch d {
			case 1:
				value |= 1 << uint(i)
			case 2:
				mask |= 1 << uint(i)
			}
		}
		if !fn(T{Value: apint.New(w, value), Mask: apint.New(w, mask)}) {
			return
		}
		i := 0
		for ; i < len(digits); i++ {
			if digits[i] < 2 {
				digits[i]++
				break
			}
			digits[i] = 0
		}
		if i == len(digits) {
			return
		}
	}
}

// String renders the tnum msb-first with 0/1/x digits ("!" for bottom),
// matching the knownbits notation.
func (t T) String() string {
	if t.IsBottom() {
		return "!"
	}
	var b strings.Builder
	for i := int(t.Width()) - 1; i >= 0; i-- {
		switch {
		case t.Mask.Bit(uint(i)):
			b.WriteByte('x')
		case t.Value.Bit(uint(i)):
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}
