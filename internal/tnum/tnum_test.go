package tnum

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// gammaMask returns γ(t) as a bitset (width ≤ 6, so 2^w ≤ 64 values).
func gammaMask(t T) uint64 {
	var out uint64
	for x, max := uint64(0), uint64(1)<<t.Width(); x < max; x++ {
		if t.Contains(apint.New(t.Width(), x)) {
			out |= 1 << x
		}
	}
	return out
}

func enumAll(w uint) []T {
	var out []T
	Enum(w, func(t T) bool { out = append(out, t); return true })
	return out
}

// TestMulGroundTruth pins the verified tnum_mul against the naive
// γ-enumeration ground truth at every width up to 6 (the paper's own
// evaluation methodology): for every pair of tnums the concrete product
// image must be contained in the abstract product (soundness), and the
// per-width count of maximally precise pairs is pinned so any change to
// the algorithm's precision profile is caught.
func TestMulGroundTruth(t *testing.T) {
	// Precise-pair counts for the verified algorithm, width 1..6.
	wantPrecise := map[uint]int{1: 9, 2: 81, 3: 713, 4: 6262, 5: 55114, 6: 487732}
	an := Analysis{}
	for w := uint(1); w <= 6; w++ {
		es := enumAll(w)
		precise := 0
		for _, a := range es {
			for _, b := range es {
				got := an.Mul(a, b)
				var image uint64
				for _, va := range gammaVals(a) {
					for _, vb := range gammaVals(b) {
						image |= 1 << va.Mul(vb).Uint64()
					}
				}
				gotSet := gammaMask(got)
				if image&^gotSet != 0 {
					t.Fatalf("w=%d: mul(%s, %s) = %s misses concrete products (image %b, γ %b)",
						w, a, b, got, image, gotSet)
				}
				// α(image) ⊑ got always holds for a sound transfer; count
				// the pairs where the two coincide.
				if gotSet == image|alphaMask(w, image) {
					precise++
				}
			}
		}
		if want, ok := wantPrecise[w]; ok && precise != want {
			t.Errorf("w=%d: %d maximally precise pairs, want %d", w, precise, want)
		}
	}
}

// alphaMask returns γ(α(image)) for a non-empty image bitset.
func alphaMask(w uint, image uint64) uint64 {
	var vs []apint.Int
	for x := uint64(0); x < uint64(1)<<w; x++ {
		if image&(1<<x) != 0 {
			vs = append(vs, apint.New(w, x))
		}
	}
	if len(vs) == 0 {
		return 0
	}
	return gammaMask(Abstract(w, vs))
}

func gammaVals(t T) []apint.Int {
	var out []apint.Int
	for x, max := uint64(0), uint64(1)<<t.Width(); x < max; x++ {
		if v := apint.New(t.Width(), x); t.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// TestMulBugCaught: the seeded mask-recurrence off-by-one must be
// unsound already at width 1 — x · 1 comes back as the constant 0.
func TestMulBugCaught(t *testing.T) {
	buggy := Analysis{Bugs: Bugs{MulMask: true}}
	got := buggy.Mul(Top(1), Const(apint.One(1)))
	if got.Contains(apint.One(1)) {
		t.Fatalf("buggy mul(x, 1) = %s still contains 1; the seeded bug is not observable", got)
	}
	if clean := (Analysis{}).Mul(Top(1), Const(apint.One(1))); !clean.Contains(apint.One(1)) {
		t.Fatalf("clean mul(x, 1) = %s is unsound", clean)
	}
}

// TestTransferSoundnessExhaustive grades the whole transfer suite
// against the enumerated concrete image at widths 1..3: no concrete
// result of a well-defined execution may escape the abstract output, and
// a bottom output is only allowed when no execution is well defined.
func TestTransferSoundnessExhaustive(t *testing.T) {
	an := Analysis{}
	for w := uint(1); w <= 3; w++ {
		for _, op := range ir.AllOps() {
			if op == ir.OpBSwap {
				continue // byte widths only
			}
			valid := op.ValidFlags()
			for flags := ir.Flags(0); flags < 8; flags++ {
				if flags&^valid != 0 {
					continue
				}
				if op.IsCast() {
					for small := uint(1); small < w; small++ {
						if op == ir.OpTrunc {
							checkOp(t, an, op, flags, w, small, []uint{w})
						} else {
							checkOp(t, an, op, flags, small, w, []uint{small})
						}
					}
					continue
				}
				dstW := w
				if op.HasBoolResult() {
					dstW = 1
				}
				ws := make([]uint, op.Arity())
				for i := range ws {
					ws[i] = w
				}
				if op == ir.OpSelect {
					ws[0] = 1
				}
				checkOp(t, an, op, flags, w, dstW, ws)
			}
		}
	}
}

func checkOp(t *testing.T, an Analysis, op ir.Op, flags ir.Flags, w, dstW uint, ws []uint) {
	t.Helper()
	lists := make([][]T, len(ws))
	for i, opw := range ws {
		lists[i] = enumAll(opw)
	}
	idx := make([]int, len(ws))
	args := make([]T, len(ws))
	vals := make([]apint.Int, len(ws))
	for {
		for i := range idx {
			args[i] = lists[i][idx[i]]
		}
		got := an.Transfer(op, flags, dstW, args)
		var image uint64
		live := false
		var walk func(i int)
		walk = func(i int) {
			if i == len(args) {
				if v, ok := eval.ConstFold(op, flags, dstW, vals); ok {
					live = true
					image |= 1 << v.Uint64()
				}
				return
			}
			for _, v := range gammaVals(args[i]) {
				vals[i] = v
				walk(i + 1)
			}
		}
		walk(0)
		if live {
			if got.IsBottom() {
				t.Fatalf("%s%s i%d→i%d on %v: live tuple graded bottom", op, flags, w, dstW, args)
			}
			if image&^gammaMask(got) != 0 {
				t.Fatalf("%s%s i%d→i%d on %v: output %s misses image %b", op, flags, w, dstW, args, got, image)
			}
		}
		// Advance the odometer.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(lists[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// TestLatticeBasics: Union/Intersect/Leq agree with concretization
// inclusion on every pair at width 2, and the knownbits round trip is
// the identity.
func TestLatticeBasics(t *testing.T) {
	const w = 2
	es := enumAll(w)
	for _, a := range es {
		ga := gammaMask(a)
		if rt := FromKnownBits(a.KnownBits()); !rt.Eq(a) {
			t.Fatalf("knownbits round trip of %s gives %s", a, rt)
		}
		for _, b := range es {
			gb := gammaMask(b)
			if got, want := a.Leq(b), ga&^gb == 0; got != want {
				t.Fatalf("Leq(%s, %s) = %t, γ-inclusion says %t", a, b, got, want)
			}
			if gu := gammaMask(a.Union(b)); (ga|gb)&^gu != 0 {
				t.Fatalf("Union(%s, %s) misses members", a, b)
			}
			gi := gammaMask(a.Intersect(b))
			if gi != ga&gb {
				t.Fatalf("Intersect(%s, %s) = %b, want exact %b", a, b, gi, ga&gb)
			}
		}
	}
	if !Bottom(w).IsBottom() || gammaMask(Bottom(w)) != 0 {
		t.Fatalf("Bottom is not empty")
	}
	if gammaMask(Top(w)) != (1<<(1<<w))-1 {
		t.Fatalf("Top is not full")
	}
}
