package tnum

import (
	"math/bits"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

// Bugs selects deliberately re-broken transfer functions, mirroring
// llvmport.BugConfig: each bug is a realistic, historically shaped defect
// the checkers must catch.
type Bugs struct {
	// MulMask seeds an off-by-one into the mask recurrence of the
	// verified tnum_mul: the uncertain-LSB step accumulates the partial
	// product's uncertainty shifted right by one, so the low bit of each
	// partial product is claimed known when it is not. Unsound from
	// width 1 (x · 1 comes back as the constant 0).
	MulMask bool
}

// Analysis is the tnum abstract interpreter: a per-op transfer-function
// suite over T plus a per-instruction DAG walk. The zero value is the
// clean (verified) suite.
type Analysis struct {
	Bugs Bugs
}

// Add is the tnum paper's addition: carry uncertainty is the XOR spread
// between the all-zeros and all-ones completions of the masks.
func Add(a, b T) T {
	sm := a.Mask.Add(b.Mask)
	sv := a.Value.Add(b.Value)
	sigma := sm.Add(sv)
	chi := sigma.Xor(sv)
	mu := chi.Or(a.Mask).Or(b.Mask)
	return T{Value: sv.And(mu.Not()), Mask: mu}
}

// Sub is the tnum paper's subtraction.
func Sub(a, b T) T {
	dv := a.Value.Sub(b.Value)
	alpha := dv.Add(a.Mask)
	beta := dv.Sub(b.Mask)
	chi := alpha.Xor(beta)
	mu := chi.Or(a.Mask).Or(b.Mask)
	return T{Value: dv.And(mu.Not()), Mask: mu}
}

// And is exact bitwise conjunction.
func And(a, b T) T {
	alpha := a.Value.Or(a.Mask)
	beta := b.Value.Or(b.Mask)
	v := a.Value.And(b.Value)
	return T{Value: v, Mask: alpha.And(beta).And(v.Not())}
}

// Or is exact bitwise disjunction.
func Or(a, b T) T {
	v := a.Value.Or(b.Value)
	mu := a.Mask.Or(b.Mask)
	return T{Value: v, Mask: mu.And(v.Not())}
}

// Xor is exact bitwise exclusive or.
func Xor(a, b T) T {
	v := a.Value.Xor(b.Value)
	mu := a.Mask.Or(b.Mask)
	return T{Value: v.And(mu.Not()), Mask: mu}
}

// Mul is the verified long multiplication of the tnum paper (the
// algorithm adopted by the kernel): the certain product of the values
// plus, per LSB of a, a partial-product uncertainty accumulated with
// tnum addition.
func (an Analysis) Mul(a, b T) T {
	w := a.Width()
	accV := Const(a.Value.Mul(b.Value))
	accM := Const(apint.Zero(w))
	for !a.Value.IsZero() || !a.Mask.IsZero() {
		if a.Value.Bit(0) {
			// LSB of a is a certain 1: b's uncertainty enters as is.
			accM = Add(accM, T{Value: apint.Zero(w), Mask: b.Mask})
		} else if a.Mask.Bit(0) {
			// LSB of a is uncertain: the whole partial product is.
			m := b.Value.Or(b.Mask)
			if an.Bugs.MulMask {
				m = m.LShr(1)
			}
			accM = Add(accM, T{Value: apint.Zero(w), Mask: m})
		}
		a = T{Value: a.Value.LShr(1), Mask: a.Mask.LShr(1)}
		b = T{Value: b.Value.Shl(1), Mask: b.Mask.Shl(1)}
	}
	return Add(accV, accM)
}

// shiftConst maps every member through a constant shift (exact per-value
// maps, so shifting value and mask componentwise is the best transformer).
func shiftConst(a T, s uint, shift func(apint.Int, uint) apint.Int) T {
	return T{Value: shift(a.Value, s), Mask: shift(a.Mask, s)}
}

// fromURange abstracts the unsigned interval [lo, hi]: the bits above the
// highest differing position are known, everything below is unknown.
func fromURange(w uint, lo, hi uint64) T {
	if lo == hi {
		return Const(apint.New(w, lo))
	}
	d := uint(64 - bits.LeadingZeros64(lo^hi))
	m := uint64(1)<<d - 1
	return T{Value: apint.New(w, lo&^m), Mask: apint.New(w, m)}
}

// xorConst folds a constant into a tnum exactly (used to bias signed
// comparisons into unsigned ones).
func xorConst(a T, c apint.Int) T {
	return T{Value: a.Value.Xor(c).And(a.Mask.Not()), Mask: a.Mask}
}

func constBool(b bool) T {
	if b {
		return Const(apint.One(1))
	}
	return Const(apint.Zero(1))
}

// Transfer is the full per-op transfer-function suite for the IR's
// instruction set. Operand tuples that admit no well-defined execution
// produce bottom; ops with no useful tnum transformer fall back to the
// always-sound top.
func (an Analysis) Transfer(op ir.Op, flags ir.Flags, dstW uint, args []T) T {
	for _, a := range args {
		if a.IsBottom() {
			return Bottom(dstW)
		}
	}
	// All-singleton tuples fold through the concrete semantics exactly;
	// a fold that hits UB/poison means no execution is well defined.
	allConst := true
	for _, a := range args {
		allConst = allConst && a.IsConst()
	}
	if allConst {
		vals := make([]apint.Int, len(args))
		for i, a := range args {
			vals[i] = a.Value
		}
		if v, ok := eval.ConstFold(op, flags, dstW, vals); ok {
			return Const(v)
		}
		return Bottom(dstW)
	}

	w := dstW
	switch op {
	case ir.OpAdd:
		return Add(args[0], args[1])
	case ir.OpSub:
		return Sub(args[0], args[1])
	case ir.OpMul:
		return an.Mul(args[0], args[1])
	case ir.OpAnd:
		return And(args[0], args[1])
	case ir.OpOr:
		return Or(args[0], args[1])
	case ir.OpXor:
		return Xor(args[0], args[1])

	case ir.OpShl:
		return shiftUnion(args[0], args[1], apint.Int.Shl)
	case ir.OpLShr:
		return shiftUnion(args[0], args[1], apint.Int.LShr)
	case ir.OpAShr:
		return shiftUnion(args[0], args[1], apint.Int.AShr)

	case ir.OpRotL:
		return rotUnion(args[0], args[1], apint.Int.RotL)
	case ir.OpRotR:
		return rotUnion(args[0], args[1], apint.Int.RotR)

	case ir.OpZExt:
		return T{Value: args[0].Value.ZExt(dstW), Mask: args[0].Mask.ZExt(dstW)}
	case ir.OpSExt:
		// A known sign bit extends through the value, an unknown one
		// through the mask (value's sign bit is 0 whenever the mask's is
		// set, so extending both componentwise covers both cases).
		return T{Value: args[0].Value.SExt(dstW), Mask: args[0].Mask.SExt(dstW)}
	case ir.OpTrunc:
		return T{Value: args[0].Value.Trunc(dstW), Mask: args[0].Mask.Trunc(dstW)}

	case ir.OpSelect:
		cond, tv, fv := args[0], args[1], args[2]
		if cond.IsConst() {
			if cond.Value.IsOne() {
				return tv
			}
			return fv
		}
		return tv.Union(fv)

	case ir.OpEq, ir.OpNe:
		if args[0].Intersect(args[1]).IsBottom() {
			return constBool(op == ir.OpNe)
		}
		return Top(1)
	case ir.OpULT, ir.OpULE:
		return cmpUnsigned(op, args[0], args[1])
	case ir.OpSLT, ir.OpSLE:
		// Bias by the sign bit: slt(a, b) = ult(a ^ SignBit, b ^ SignBit).
		sb := apint.SignBitValue(args[0].Width())
		if op == ir.OpSLT {
			return cmpUnsigned(ir.OpULT, xorConst(args[0], sb), xorConst(args[1], sb))
		}
		return cmpUnsigned(ir.OpULE, xorConst(args[0], sb), xorConst(args[1], sb))

	case ir.OpUAddO:
		a, b := args[0], args[1]
		switch {
		case !a.UMax().UAddOverflow(b.UMax()):
			return constBool(false)
		case a.UMin().UAddOverflow(b.UMin()):
			return constBool(true)
		}
		return Top(1)
	case ir.OpUSubO:
		a, b := args[0], args[1]
		switch {
		case a.UMin().UGE(b.UMax()):
			return constBool(false)
		case a.UMax().ULT(b.UMin()):
			return constBool(true)
		}
		return Top(1)
	case ir.OpUMulO:
		a, b := args[0], args[1]
		switch {
		case !a.UMax().UMulOverflow(b.UMax()):
			return constBool(false)
		case a.UMin().UMulOverflow(b.UMin()):
			return constBool(true)
		}
		return Top(1)
	case ir.OpSAddO, ir.OpSSubO, ir.OpSMulO:
		return Top(1)

	case ir.OpUDiv:
		a, b := args[0], args[1]
		if b.UMax().IsZero() {
			return Bottom(w) // the divisor is the constant 0: pure UB
		}
		bMin := b.UMin()
		if bMin.IsZero() {
			bMin = apint.One(b.Width())
		}
		return fromURange(w, a.UMin().UDiv(b.UMax()).Uint64(), a.UMax().UDiv(bMin).Uint64())
	case ir.OpURem:
		a, b := args[0], args[1]
		if b.UMax().IsZero() {
			return Bottom(w)
		}
		if b.IsConst() && b.Value.IsPowerOfTwo() {
			return And(a, Const(b.Value.Sub(apint.One(w))))
		}
		hi := b.UMax().Sub(apint.One(w)).UMin(a.UMax())
		return fromURange(w, 0, hi.Uint64())
	case ir.OpSDiv, ir.OpSRem:
		return Top(w)

	case ir.OpCtPop:
		return fromURange(w, uint64(args[0].Value.PopCount()), uint64(args[0].UMax().PopCount()))
	case ir.OpCttz:
		a := args[0]
		lo := uint64(a.UMax().CountTrailingZeros())
		hi := uint64(a.Width())
		if !a.Value.IsZero() {
			hi = uint64(a.Value.CountTrailingZeros())
		}
		return fromURange(w, lo, hi)
	case ir.OpCtlz:
		a := args[0]
		lo := uint64(a.UMax().CountLeadingZeros())
		hi := uint64(a.Width())
		if !a.Value.IsZero() {
			hi = uint64(a.Value.CountLeadingZeros())
		}
		return fromURange(w, lo, hi)
	case ir.OpBSwap:
		if w%8 == 0 {
			return T{Value: args[0].Value.ByteSwap(), Mask: args[0].Mask.ByteSwap()}
		}
		return Top(w)
	case ir.OpBitReverse:
		return T{Value: args[0].Value.ReverseBits(), Mask: args[0].Mask.ReverseBits()}

	case ir.OpAbs:
		a := args[0]
		neg := Sub(Const(apint.Zero(w)), a)
		switch {
		case !a.Mask.Bit(w-1) && !a.Value.Bit(w-1):
			return a // sign known zero
		case a.Value.Bit(w - 1):
			return neg // sign known one
		}
		return a.Union(neg)

	case ir.OpUMin:
		a, b := args[0], args[1]
		return a.Union(b).Intersect(
			fromURange(w, a.UMin().UMin(b.UMin()).Uint64(), a.UMax().UMin(b.UMax()).Uint64()))
	case ir.OpUMax:
		a, b := args[0], args[1]
		return a.Union(b).Intersect(
			fromURange(w, a.UMin().UMax(b.UMin()).Uint64(), a.UMax().UMax(b.UMax()).Uint64()))
	case ir.OpSMin, ir.OpSMax:
		return args[0].Union(args[1])

	case ir.OpFshl, ir.OpFshr:
		return fshUnion(op, args[0], args[1], args[2])
	}
	return Top(dstW)
}

// shiftUnion is the transformer for shl/lshr/ashr: the union over every
// feasible constant amount below the width (amounts at or above the width
// are poison, so their executions are excluded from the image — a shift
// whose amount tnum admits only oversized values has no defined
// execution at all).
func shiftUnion(a, s T, shift func(apint.Int, uint) apint.Int) T {
	w := a.Width()
	out := Bottom(w)
	for c := uint(0); c < w; c++ {
		if s.Contains(apint.New(s.Width(), uint64(c))) {
			out = out.Union(shiftConst(a, c, shift))
		}
	}
	return out
}

// rotUnion is the transformer for rotl/rotr: amounts wrap modulo the
// width and are never poison; a non-constant amount unions all rotations.
func rotUnion(a, s T, rot func(apint.Int, uint) apint.Int) T {
	w := a.Width()
	if s.IsConst() {
		return shiftConst(a, uint(s.Value.Uint64()%uint64(w)), rot)
	}
	out := Bottom(w)
	for c := uint(0); c < w; c++ {
		out = out.Union(shiftConst(a, c, rot))
	}
	return out
}

// fshUnion is the transformer for the general funnel shifts: per constant
// amount the result is an Or of two exactly shifted halves; non-constant
// amounts union over all residues modulo the width.
func fshUnion(op ir.Op, a, b, s T) T {
	w := a.Width()
	one := func(c uint) T {
		if c == 0 {
			if op == ir.OpFshl {
				return a
			}
			return b
		}
		if op == ir.OpFshl {
			return Or(shiftConst(a, c, apint.Int.Shl), shiftConst(b, w-c, apint.Int.LShr))
		}
		return Or(shiftConst(a, w-c, apint.Int.Shl), shiftConst(b, c, apint.Int.LShr))
	}
	if s.IsConst() {
		return one(uint(s.Value.Uint64() % uint64(w)))
	}
	out := Bottom(w)
	for c := uint(0); c < w; c++ {
		out = out.Union(one(c))
	}
	return out
}

// cmpUnsigned decides ult/ule from the unsigned bounds when possible.
func cmpUnsigned(op ir.Op, a, b T) T {
	aMin, aMax := a.UMin(), a.UMax()
	bMin, bMax := b.UMin(), b.UMax()
	if op == ir.OpULT {
		switch {
		case aMax.ULT(bMin):
			return constBool(true)
		case aMin.UGE(bMax):
			return constBool(false)
		}
		return Top(1)
	}
	switch {
	case aMax.ULE(bMin):
		return constBool(true)
	case aMin.UGT(bMax):
		return constBool(false)
	}
	return Top(1)
}

// Analyze abstract-interprets f, returning the tnum computed for every
// instruction. Variables seed from their range metadata when it is a
// non-wrapped interval, otherwise from top.
func (an Analysis) Analyze(f *ir.Function) map[*ir.Inst]T {
	out := make(map[*ir.Inst]T)
	for _, n := range f.Insts() {
		switch {
		case n.IsConst():
			out[n] = Const(n.Val)
		case n.IsVar():
			if n.HasRange && n.Lo.ULT(n.Hi) {
				out[n] = fromURange(n.Width, n.Lo.Uint64(), n.Hi.Uint64()-1)
			} else {
				out[n] = Top(n.Width)
			}
		default:
			args := make([]T, len(n.Args))
			for i, a := range n.Args {
				args[i] = out[a]
			}
			out[n] = an.Transfer(n.Op, n.Flags, n.Width, args)
		}
	}
	return out
}

// Root returns the fact Analyze computes for f's root.
func (an Analysis) Root(f *ir.Function) T { return an.Analyze(f)[f.Root] }
