// Package llvmir translates between this repository's Souper-style IR and
// an LLVM-IR-flavoured textual form — the analog of the paper's
// souper2llvm tool (Figure 1), whose purpose is to guarantee that the
// compiler's analyses and the oracle see exactly the same code. It also
// lets users write fragments the way the paper prints them:
//
//	%0 = and i32 4294967295, %x
//
// Undeclared %names become input variables at the width the use site
// requires, and a trailing "ret <ty> %v" (or the paper's bare last
// assignment) selects the root.
package llvmir

import (
	"fmt"
	"strconv"
	"strings"

	"dfcheck/internal/apint"
	"dfcheck/internal/ir"
)

// Print renders f as an LLVM-like function definition named @f, with the
// input variables as parameters.
func Print(f *ir.Function) string {
	var sb strings.Builder
	sb.WriteString("define i")
	fmt.Fprintf(&sb, "%d @f(", f.Width())
	for i, v := range f.Vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "i%d %%%s", v.Width, v.Name)
	}
	sb.WriteString(") {\n")

	names := make(map[*ir.Inst]string)
	for _, v := range f.Vars {
		names[v] = "%" + v.Name
		if v.HasRange {
			// Emitted in the parseable extended form (LLVM proper
			// attaches !range metadata to loads/calls; our parser reads
			// this declaration before the variable's first use).
			fmt.Fprintf(&sb, "  %%%s = range [%d,%d)\n", v.Name, v.Lo.Int64(), v.Hi.Int64())
		}
	}
	next := 0
	for _, n := range f.Insts() {
		switch n.Op {
		case ir.OpVar:
			continue
		case ir.OpConst:
			names[n] = strconv.FormatUint(n.Val.Uint64(), 10)
			continue
		}
		name := fmt.Sprintf("%%t%d", next)
		next++
		names[n] = name
		fmt.Fprintf(&sb, "  %s = %s\n", name, rhs(n, names))
	}
	fmt.Fprintf(&sb, "  ret i%d %s\n}\n", f.Width(), names[f.Root])
	return sb.String()
}

func rhs(n *ir.Inst, names map[*ir.Inst]string) string {
	ty := fmt.Sprintf("i%d", n.Width)
	a := func(i int) string { return names[n.Args[i]] }
	switch n.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		return fmt.Sprintf("%s%s %s %s, %s", n.Op, flagsText(n.Flags), ty, a(0), a(1))
	case ir.OpEq, ir.OpNe, ir.OpULT, ir.OpULE, ir.OpSLT, ir.OpSLE:
		return fmt.Sprintf("icmp %s i%d %s, %s", icmpName(n.Op), n.Args[0].Width, a(0), a(1))
	case ir.OpSelect:
		return fmt.Sprintf("select i1 %s, %s %s, %s %s", a(0), ty, a(1), ty, a(2))
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		return fmt.Sprintf("%s i%d %s to %s", n.Op, n.Args[0].Width, a(0), ty)
	case ir.OpCtPop:
		return fmt.Sprintf("call %s @llvm.ctpop.%s(%s %s)", ty, ty, ty, a(0))
	case ir.OpBSwap:
		return fmt.Sprintf("call %s @llvm.bswap.%s(%s %s)", ty, ty, ty, a(0))
	case ir.OpBitReverse:
		return fmt.Sprintf("call %s @llvm.bitreverse.%s(%s %s)", ty, ty, ty, a(0))
	case ir.OpCttz:
		return fmt.Sprintf("call %s @llvm.cttz.%s(%s %s, i1 false)", ty, ty, ty, a(0))
	case ir.OpCtlz:
		return fmt.Sprintf("call %s @llvm.ctlz.%s(%s %s, i1 false)", ty, ty, ty, a(0))
	case ir.OpRotL:
		return fmt.Sprintf("call %s @llvm.fshl.%s(%s %s, %s %s, %s %s)", ty, ty, ty, a(0), ty, a(0), ty, a(1))
	case ir.OpRotR:
		return fmt.Sprintf("call %s @llvm.fshr.%s(%s %s, %s %s, %s %s)", ty, ty, ty, a(0), ty, a(0), ty, a(1))
	case ir.OpFshl, ir.OpFshr:
		return fmt.Sprintf("call %s @llvm.%s.%s(%s %s, %s %s, %s %s)", ty, n.Op, ty, ty, a(0), ty, a(1), ty, a(2))
	case ir.OpUMin, ir.OpUMax, ir.OpSMin, ir.OpSMax:
		return fmt.Sprintf("call %s @llvm.%s.%s(%s %s, %s %s)", ty, n.Op, ty, ty, a(0), ty, a(1))
	case ir.OpAbs:
		return fmt.Sprintf("call %s @llvm.abs.%s(%s %s, i1 false)", ty, ty, ty, a(0))
	case ir.OpUAddO, ir.OpSAddO, ir.OpUSubO, ir.OpSSubO, ir.OpUMulO, ir.OpSMulO:
		// Souper's decomposed overflow flag; LLVM proper returns a
		// struct from @llvm.*.with.overflow, so a custom callee keeps
		// the textual form one value.
		opTy := fmt.Sprintf("i%d", n.Args[0].Width)
		return fmt.Sprintf("call i1 @souper.%s.%s(%s %s, %s %s)", n.Op, opTy, opTy, a(0), opTy, a(1))
	}
	panic(fmt.Sprintf("llvmir: unhandled op %v", n.Op))
}

func flagsText(f ir.Flags) string {
	s := ""
	if f&ir.FlagNUW != 0 {
		s += " nuw"
	}
	if f&ir.FlagNSW != 0 {
		s += " nsw"
	}
	if f&ir.FlagExact != 0 {
		s += " exact"
	}
	return s
}

func icmpName(op ir.Op) string {
	switch op {
	case ir.OpEq:
		return "eq"
	case ir.OpNe:
		return "ne"
	case ir.OpULT:
		return "ult"
	case ir.OpULE:
		return "ule"
	case ir.OpSLT:
		return "slt"
	case ir.OpSLE:
		return "sle"
	}
	panic("llvmir: not a comparison")
}

// Parse reads an LLVM-like fragment: either a full "define … { … ret … }"
// body or the paper's bare assignment list. Undeclared %names become input
// variables; "%x = range [a,b)" lines attach range metadata; the root is
// the ret operand, or the last assignment when there is no ret.
func Parse(src string) (*ir.Function, error) {
	p := &llParser{
		b:    ir.NewBuilder(),
		defs: map[string]*ir.Inst{},
		rng:  map[string][2]int64{},
	}
	var lastDef *ir.Inst
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "" || line == "}" || strings.HasPrefix(line, "define "):
			continue
		case strings.HasPrefix(line, "ret "):
			v, err := p.retOperand(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			p.root = v
			continue
		}
		n, err := p.statement(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if n != nil {
			lastDef = n
		}
	}
	if p.root == nil {
		p.root = lastDef
	}
	if p.root == nil {
		return nil, fmt.Errorf("llvmir: no instructions")
	}
	return p.b.Function(p.root), nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *ir.Function {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type llParser struct {
	b    *ir.Builder
	defs map[string]*ir.Inst
	rng  map[string][2]int64 // pending range metadata by var name
	root *ir.Inst
}

func (p *llParser) retOperand(line string) (*ir.Inst, error) {
	fields := strings.Fields(line) // ret iN %v
	if len(fields) != 3 {
		return nil, fmt.Errorf("bad ret %q", line)
	}
	w, err := parseType(fields[1])
	if err != nil {
		return nil, err
	}
	return p.operand(fields[2], w)
}

func (p *llParser) statement(line string) (*ir.Inst, error) {
	lhs, rhs, ok := strings.Cut(line, "=")
	if !ok {
		return nil, fmt.Errorf("expected assignment, got %q", line)
	}
	name := strings.TrimSpace(lhs)
	if !strings.HasPrefix(name, "%") {
		return nil, fmt.Errorf("bad name %q", name)
	}
	name = name[1:]
	rhs = strings.TrimSpace(rhs)

	// Range metadata declaration: %x = range [a,b)
	if rest, ok := strings.CutPrefix(rhs, "range "); ok {
		lo, hi, err := parseRange(strings.TrimSpace(rest))
		if err != nil {
			return nil, err
		}
		if _, exists := p.defs[name]; exists {
			return nil, fmt.Errorf("range metadata after use of %%%s", name)
		}
		p.rng[name] = [2]int64{lo, hi}
		return nil, nil
	}

	if _, dup := p.defs[name]; dup {
		return nil, fmt.Errorf("%%%s redefined", name)
	}
	n, err := p.instruction(rhs)
	if err != nil {
		return nil, err
	}
	p.defs[name] = n
	return n, nil
}

func (p *llParser) instruction(rhs string) (n *ir.Inst, err error) {
	// The Builder enforces width and arity invariants with panics;
	// surface them as parse errors.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	mnem, rest, _ := strings.Cut(rhs, " ")
	rest = strings.TrimSpace(rest)
	switch mnem {
	case "icmp":
		return p.icmp(rest)
	case "select":
		return p.selectInst(rest)
	case "zext", "sext", "trunc":
		return p.cast(mnem, rest)
	case "call":
		return p.call(rest)
	}
	// Binary op with optional flags: add [nuw] [nsw] iN a, b
	op, ok := ir.OpFromName(mnem)
	if !ok || !op.IsBinary() {
		return nil, fmt.Errorf("unknown instruction %q", mnem)
	}
	var flags ir.Flags
	for {
		switch {
		case strings.HasPrefix(rest, "nuw "):
			flags |= ir.FlagNUW
			rest = rest[4:]
		case strings.HasPrefix(rest, "nsw "):
			flags |= ir.FlagNSW
			rest = rest[4:]
		case strings.HasPrefix(rest, "exact "):
			flags |= ir.FlagExact
			rest = rest[6:]
		default:
			goto parsed
		}
	}
parsed:
	tyStr, operands, ok := strings.Cut(rest, " ")
	if !ok {
		return nil, fmt.Errorf("missing operands in %q", rhs)
	}
	w, err := parseType(tyStr)
	if err != nil {
		return nil, err
	}
	aStr, bStr, ok := strings.Cut(operands, ",")
	if !ok {
		return nil, fmt.Errorf("expected two operands in %q", rhs)
	}
	a, err := p.operand(strings.TrimSpace(aStr), w)
	if err != nil {
		return nil, err
	}
	bv, err := p.operand(strings.TrimSpace(bStr), w)
	if err != nil {
		return nil, err
	}
	if flags&^op.ValidFlags() != 0 {
		return nil, fmt.Errorf("invalid flags for %s", mnem)
	}
	return p.b.Build(op, flags, a, bv), nil
}

func (p *llParser) icmp(rest string) (*ir.Inst, error) {
	predStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return nil, fmt.Errorf("bad icmp %q", rest)
	}
	tyStr, operands, ok := strings.Cut(strings.TrimSpace(rest), " ")
	if !ok {
		return nil, fmt.Errorf("bad icmp operands %q", rest)
	}
	w, err := parseType(tyStr)
	if err != nil {
		return nil, err
	}
	aStr, bStr, ok := strings.Cut(operands, ",")
	if !ok {
		return nil, fmt.Errorf("bad icmp operands %q", operands)
	}
	a, err := p.operand(strings.TrimSpace(aStr), w)
	if err != nil {
		return nil, err
	}
	b, err := p.operand(strings.TrimSpace(bStr), w)
	if err != nil {
		return nil, err
	}
	// Map the inverted predicates by swapping.
	switch predStr {
	case "eq":
		return p.b.Build(ir.OpEq, 0, a, b), nil
	case "ne":
		return p.b.Build(ir.OpNe, 0, a, b), nil
	case "ult":
		return p.b.Build(ir.OpULT, 0, a, b), nil
	case "ule":
		return p.b.Build(ir.OpULE, 0, a, b), nil
	case "slt":
		return p.b.Build(ir.OpSLT, 0, a, b), nil
	case "sle":
		return p.b.Build(ir.OpSLE, 0, a, b), nil
	case "ugt":
		return p.b.Build(ir.OpULT, 0, b, a), nil
	case "uge":
		return p.b.Build(ir.OpULE, 0, b, a), nil
	case "sgt":
		return p.b.Build(ir.OpSLT, 0, b, a), nil
	case "sge":
		return p.b.Build(ir.OpSLE, 0, b, a), nil
	}
	return nil, fmt.Errorf("unknown icmp predicate %q", predStr)
}

func (p *llParser) selectInst(rest string) (*ir.Inst, error) {
	parts := strings.Split(rest, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad select %q", rest)
	}
	var vals [3]*ir.Inst
	for i, part := range parts {
		tyStr, valStr, ok := strings.Cut(strings.TrimSpace(part), " ")
		if !ok {
			return nil, fmt.Errorf("bad select operand %q", part)
		}
		w, err := parseType(tyStr)
		if err != nil {
			return nil, err
		}
		v, err := p.operand(strings.TrimSpace(valStr), w)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return p.b.Select(vals[0], vals[1], vals[2]), nil
}

func (p *llParser) cast(mnem, rest string) (*ir.Inst, error) {
	// zext i4 %x to i8
	body, toStr, ok := strings.Cut(rest, " to ")
	if !ok {
		return nil, fmt.Errorf("bad cast %q", rest)
	}
	tyStr, valStr, ok := strings.Cut(strings.TrimSpace(body), " ")
	if !ok {
		return nil, fmt.Errorf("bad cast operand %q", body)
	}
	srcW, err := parseType(tyStr)
	if err != nil {
		return nil, err
	}
	dstW, err := parseType(strings.TrimSpace(toStr))
	if err != nil {
		return nil, err
	}
	v, err := p.operand(strings.TrimSpace(valStr), srcW)
	if err != nil {
		return nil, err
	}
	op, _ := ir.OpFromName(mnem)
	return p.b.BuildCast(op, dstW, v), nil
}

func (p *llParser) call(rest string) (*ir.Inst, error) {
	// call iN @llvm.<name>.iN(iN %x[, ...])
	tyStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return nil, fmt.Errorf("bad call %q", rest)
	}
	w, err := parseType(tyStr)
	if err != nil {
		return nil, err
	}
	var prefix string
	switch {
	case strings.HasPrefix(rest, "@llvm."):
		prefix = "@llvm."
	case strings.HasPrefix(rest, "@souper."):
		prefix = "@souper."
	default:
		return nil, fmt.Errorf("unsupported callee in %q", rest)
	}
	nameEnd := strings.IndexByte(rest, '(')
	if nameEnd < 0 || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("bad call syntax %q", rest)
	}
	callee := rest[len(prefix):nameEnd]
	intrinsic, _, _ := strings.Cut(callee, ".")
	argsText := rest[nameEnd+1 : len(rest)-1]
	var args []*ir.Inst
	for _, part := range strings.Split(argsText, ",") {
		tyS, valS, ok := strings.Cut(strings.TrimSpace(part), " ")
		if !ok {
			return nil, fmt.Errorf("bad call argument %q", part)
		}
		aw, err := parseType(tyS)
		if err != nil {
			return nil, err
		}
		v, err := p.operand(strings.TrimSpace(valS), aw)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	switch intrinsic {
	case "ctpop", "bswap", "bitreverse":
		op, _ := ir.OpFromName(intrinsic)
		return p.b.Build(op, 0, args[0]), nil
	case "cttz", "ctlz", "abs":
		op, _ := ir.OpFromName(intrinsic)
		return p.b.Build(op, 0, args[0]), nil // the poison flag arg is dropped
	case "umin", "umax", "smin", "smax",
		"uaddo", "saddo", "usubo", "ssubo", "umulo", "smulo":
		op, _ := ir.OpFromName(intrinsic)
		if len(args) != 2 {
			return nil, fmt.Errorf("%s expects two arguments", intrinsic)
		}
		return p.b.Build(op, 0, args[0], args[1]), nil
	case "fshl", "fshr":
		if len(args) != 3 {
			return nil, fmt.Errorf("funnel shifts take three arguments")
		}
		// The rotate form canonicalizes to rotl/rotr.
		if args[0] == args[1] {
			if intrinsic == "fshl" {
				return p.b.Build(ir.OpRotL, 0, args[0], args[2]), nil
			}
			return p.b.Build(ir.OpRotR, 0, args[0], args[2]), nil
		}
		op, _ := ir.OpFromName(intrinsic)
		return p.b.Build(op, 0, args[0], args[1], args[2]), nil
	}
	_ = w
	return nil, fmt.Errorf("unsupported intrinsic %q", intrinsic)
}

// operand resolves a %name (declaring a variable at width w on first use)
// or an integer literal.
func (p *llParser) operand(tok string, w uint) (*ir.Inst, error) {
	if strings.HasPrefix(tok, "%") {
		name := tok[1:]
		if n, ok := p.defs[name]; ok {
			if n.Width != w {
				return nil, fmt.Errorf("%%%s used at i%d but has width i%d", name, w, n.Width)
			}
			return n, nil
		}
		var v *ir.Inst
		if r, ok := p.rng[name]; ok {
			v = p.b.VarRange(name, w, apint.NewSigned(w, r[0]), apint.NewSigned(w, r[1]))
			delete(p.rng, name)
		} else {
			v = p.b.Var(name, w)
		}
		p.defs[name] = v
		return v, nil
	}
	switch tok {
	case "false":
		return p.b.Const(apint.Zero(w)), nil
	case "true":
		return p.b.Const(apint.One(w)), nil
	}
	if v, err := strconv.ParseUint(tok, 10, 64); err == nil {
		return p.b.Const(apint.New(w, v)), nil
	}
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad operand %q", tok)
	}
	return p.b.Const(apint.NewSigned(w, v)), nil
}

func parseType(s string) (uint, error) {
	if !strings.HasPrefix(s, "i") {
		return 0, fmt.Errorf("bad type %q", s)
	}
	w, err := strconv.ParseUint(s[1:], 10, 8)
	if err != nil || w == 0 || w > apint.MaxWidth {
		return 0, fmt.Errorf("bad width %q", s)
	}
	return uint(w), nil
}

func parseRange(s string) (int64, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	loS, hiS, ok := strings.Cut(s[1:len(s)-1], ",")
	if !ok {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	lo, err := strconv.ParseInt(strings.TrimSpace(loS), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err := strconv.ParseInt(strings.TrimSpace(hiS), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
