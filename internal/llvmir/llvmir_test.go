package llvmir

import (
	"strings"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
)

func TestParsePaperStyleFragments(t *testing.T) {
	// The exact notation the paper prints in §4.2–4.5.
	cases := []string{
		"%0 = shl i8 32, %x",
		"%0 = zext i4 %x to i8\n%1 = lshr i8 %0, %y",
		"%0 = and i8 1, %x\n%1 = add i8 %x, %0",
		"%0 = mul nsw i8 10, %x\n%1 = srem i8 %0, 10",
		"%x = range [0,5)\n%0 = add i8 1, %x",
		"%0 = icmp slt i8 %x, 0",
		"%0 = udiv i16 %x, 1000",
		"%0 = icmp eq i32 0, %x\n%1 = select i1 %0, i32 1, i32 %x",
		"%x = range [1,7)\n%0 = and i32 4294967295, %x",
		"%0 = srem i32 %x, 8",
		"%0 = udiv i64 128, %x",
		"%x = range [1,0)\n%0 = sub i64 0, %x\n%1 = and i64 %x, %0",
		"%0 = and i32 7, %x\n%1 = shl i32 1, %0\n%2 = trunc i32 %1 to i8",
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if err := ir.Verify(f); err != nil {
			t.Errorf("Parse(%q) invalid: %v", src, err)
		}
	}
}

func TestParseRangeMetadata(t *testing.T) {
	f := MustParse("%x = range [0,5)\n%0 = add i8 1, %x")
	v := f.Vars[0]
	if !v.HasRange || v.Lo.Uint64() != 0 || v.Hi.Uint64() != 5 {
		t.Errorf("range = [%v,%v) hasRange=%v", v.Lo, v.Hi, v.HasRange)
	}
	if v.Width != 8 {
		t.Errorf("width inferred = %d, want 8 (from use site)", v.Width)
	}
}

func TestParseRetSelectsRoot(t *testing.T) {
	f := MustParse(`
		define i8 @f(i8 %x) {
		  %t0 = add i8 %x, 1
		  %t1 = mul i8 %t0, 3
		  ret i8 %t0
		}
	`)
	if f.Root.Op != ir.OpAdd {
		t.Errorf("root = %v, want the ret operand (add)", f.Root.Op)
	}
}

func TestParseLastAssignmentIsDefaultRoot(t *testing.T) {
	f := MustParse("%0 = add i8 %x, 1\n%1 = mul i8 %0, 3")
	if f.Root.Op != ir.OpMul {
		t.Errorf("root = %v, want mul", f.Root.Op)
	}
}

func TestParseInvertedPredicates(t *testing.T) {
	cases := map[string]ir.Op{
		"%0 = icmp ugt i8 %x, %y": ir.OpULT,
		"%0 = icmp uge i8 %x, %y": ir.OpULE,
		"%0 = icmp sgt i8 %x, %y": ir.OpSLT,
		"%0 = icmp sge i8 %x, %y": ir.OpSLE,
	}
	for src, wantOp := range cases {
		f := MustParse(src)
		if f.Root.Op != wantOp {
			t.Errorf("%s: op = %v, want %v (swapped)", src, f.Root.Op, wantOp)
		}
		// Operand order must be swapped: %y first.
		if f.Root.Args[0].Name != "y" {
			t.Errorf("%s: operands not swapped", src)
		}
	}
}

func TestParseIntrinsics(t *testing.T) {
	cases := map[string]ir.Op{
		"%0 = call i8 @llvm.ctpop.i8(i8 %x)":              ir.OpCtPop,
		"%0 = call i16 @llvm.bswap.i16(i16 %x)":           ir.OpBSwap,
		"%0 = call i8 @llvm.bitreverse.i8(i8 %x)":         ir.OpBitReverse,
		"%0 = call i8 @llvm.cttz.i8(i8 %x, i1 false)":     ir.OpCttz,
		"%0 = call i8 @llvm.ctlz.i8(i8 %x, i1 false)":     ir.OpCtlz,
		"%0 = call i8 @llvm.fshl.i8(i8 %x, i8 %x, i8 %y)": ir.OpRotL,
		"%0 = call i8 @llvm.fshr.i8(i8 %x, i8 %x, i8 %y)": ir.OpRotR,
		"%0 = call i8 @llvm.fshl.i8(i8 %x, i8 %y, i8 %z)": ir.OpFshl,
		"%0 = call i8 @llvm.umin.i8(i8 %x, i8 %y)":        ir.OpUMin,
		"%0 = call i8 @llvm.smax.i8(i8 %x, i8 %y)":        ir.OpSMax,
		"%0 = call i8 @llvm.abs.i8(i8 %x, i1 false)":      ir.OpAbs,
		"%0 = call i1 @souper.uaddo.i8(i8 %x, i8 %y)":     ir.OpUAddO,
		"%0 = call i1 @souper.smulo.i8(i8 %x, i8 %y)":     ir.OpSMulO,
	}
	for src, wantOp := range cases {
		f := MustParse(src)
		if f.Root.Op != wantOp {
			t.Errorf("%s: op = %v, want %v", src, f.Root.Op, wantOp)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{"", "no instructions"},
		{"%0 = frob i8 %x, %y", "unknown instruction"},
		{"%0 = add i8 %x, %y\n%0 = add i8 %x, %y", "redefined"},
		{"%0 = add i99 %x, %y", "bad width"},
		{"%0 = icmp wat i8 %x, %y", "unknown icmp predicate"},
		{"%0 = add i8 %x, %y\n%1 = add i16 %0, %0", "used at i16"},
		{"%0 = call i8 @memcpy(i8 %x)", "unsupported callee"},
		{"%0 = call i8 @llvm.fshl.i8(i8 %x, i8 %y)", "three arguments"},
		{"%0 = call i8 @llvm.umin.i8(i8 %x)", "two arguments"},
		{"%0 = and nsw i8 %x, %y", "invalid flags"},
		{"%0 = add i8 %x", "two operands"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantErr)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0",
		"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
		"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1",
		"%a:i8 = var\n%b:i8 = var\n%0:i1 = ult %a, %b\n%1:i8 = select %0, %a, %b\ninfer %1",
		"%x:i8 = var\n%0:i8 = ctpop %x\n%1:i8 = rotl %0, %x\ninfer %1",
		"%x:i16 = var\n%0:i16 = bswap %x\n%1:i8 = trunc %0\ninfer %1",
		"%x:i8 = var\n%0:i8 = addnuw %x, 1:i8\n%1:i8 = lshrexact %0, 1:i8\ninfer %1",
		"%x:i8 = var\n%0:i8 = cttz %x\n%1:i8 = ctlz %x\n%2:i8 = xor %0, %1\ninfer %2",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = umin %x, %y\n%1:i8 = smax %0, %y\n%2:i8 = abs %1\ninfer %2",
		"%a:i4 = var\n%b:i4 = var\n%s:i4 = var\n%0:i4 = fshl %a, %b, %s\ninfer %0",
		"%x:i8 = var\n%y:i8 = var\n%0:i1 = uaddo %x, %y\n%1:i1 = ssubo %x, %y\n%2:i1 = and %0, %1\ninfer %2",
	}
	for _, src := range srcs {
		orig := ir.MustParse(src)
		printed := Print(orig)
		back, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of:\n%s: %v", printed, err)
			continue
		}
		// Semantic equivalence on all inputs (both must agree including
		// on which inputs are UB — range metadata round-trips through
		// the extended "%x = range [a,b)" form).
		if eval.TotalInputBits(orig) > 16 {
			continue
		}
		varByName := map[string]*ir.Inst{}
		for _, v := range back.Vars {
			varByName[v.Name] = v
		}
		eval.ForEachInput(orig, func(env eval.Env) bool {
			env2 := make(eval.Env)
			for _, v := range orig.Vars {
				nv, ok := varByName[v.Name]
				if !ok {
					t.Fatalf("var %%%s lost in round trip:\n%s", v.Name, printed)
				}
				env2[nv] = env[v]
			}
			want, ok1 := eval.Eval(orig, env)
			got, ok2 := eval.Eval(back, env2)
			if ok1 != ok2 || (ok1 && want.Ne(got)) {
				t.Fatalf("round trip differs on %v: (%v,%v) vs (%v,%v)\n%s",
					env, want, ok1, got, ok2, printed)
			}
			return true
		})
	}
}

func TestPrintContainsSignature(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%y:i4 = var\n%0:i8 = zext %y\n%1:i8 = add %x, %0\ninfer %1")
	s := Print(f)
	if !strings.Contains(s, "define i8 @f(i8 %x, i4 %y)") {
		t.Errorf("missing signature:\n%s", s)
	}
	if !strings.Contains(s, "ret i8") {
		t.Errorf("missing ret:\n%s", s)
	}
}

func TestSameCodeBothAnalysesSee(t *testing.T) {
	// The souper2llvm purpose: the Souper text and LLVM text of the same
	// function must evaluate identically (here: constant folding check).
	souper := ir.MustParse("%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0")
	llvm := MustParse("%0 = shl i8 32, %x")
	env1 := eval.Env{souper.Vars[0]: evalConst(8, 2)}
	env2 := eval.Env{llvm.Vars[0]: evalConst(8, 2)}
	v1, ok1 := eval.Eval(souper, env1)
	v2, ok2 := eval.Eval(llvm, env2)
	if !ok1 || !ok2 || v1.Ne(v2) {
		t.Errorf("representations disagree: %v vs %v", v1, v2)
	}
}

func evalConst(w uint, v uint64) apint.Int {
	return apint.New(w, v)
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	inputs := []string{
		"", "%", "ret", "ret i8", "ret i8 %x %y",
		"%0 = icmp", "%0 = select i1", "%0 = zext i8 %x to",
		"%0 = call", "%0 = call i8", "%0 = call i8 @llvm.",
		"%0 = call i8 @llvm.ctpop.i8(", "%0 = call i8 @llvm.ctpop.i8()",
		"%x = range", "%x = range [",
		"define i8 @f( {", "\x00\x01", "%0 = add i8",
		"%0 = add i8 1, 2, 3",
		"%0 = trunc i8 %x to i16",
		"%0 = select i1 %c, i8 %x, i4 %y",
	}
	valid := "%0 = mul nsw i8 10, %x\n%1 = srem i8 %0, 10"
	for cut := 0; cut < len(valid); cut += 2 {
		inputs = append(inputs, valid[:cut], valid[cut:])
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}
