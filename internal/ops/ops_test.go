package ops

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dfcheck/internal/factsvc"
	"dfcheck/internal/ir"
	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

// newOpsStack stands up the full serving stack in-process: a real fact
// service publishing into a shared registry, the slow log, health, and
// the ops endpoints on an httptest server — the same wiring the
// dfcheck-fuzz -serve mode uses.
func newOpsStack(t *testing.T) (*httptest.Server, *factsvc.Service, *Health, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	slow := metrics.NewSlowLog(8)
	cache := rescache.New()
	svc, err := factsvc.New(factsvc.Config{
		Workers: 2,
		Metrics: reg,
		Cache:   cache,
		SlowLog: slow,
		Solve: func(ctx context.Context, f *ir.Function) ([]factsvc.Fact, error) {
			cache.Put(rescache.Key{Expr: "probe", Analysis: "kb"}, rescache.Entry{})
			cache.Get(rescache.Key{Expr: "probe", Analysis: "kb"})
			return []factsvc.Fact{{Analysis: "non-zero", Fact: "true"}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	CollectCache(reg, cache)
	health := NewHealth()
	mux := http.NewServeMux()
	mux.Handle("/v1/facts", svc.Handler())
	(&Server{Registry: reg, Health: health, Slow: slow, Interval: 50 * time.Millisecond}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	health.Ready()
	return ts, svc, health, reg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeModeScrape is the end-to-end acceptance test: start serve
// mode in-process, push real traffic through /v1/facts, scrape
// /metricsz, and round-trip a counter, a labeled gauge, and a histogram
// whose buckets are cumulative and monotone.
func TestServeModeScrape(t *testing.T) {
	ts, _, _, _ := newOpsStack(t)

	// Real traffic: a batch with an intra-batch duplicate.
	body := `{"exprs": ["%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 1:i8, %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = add 2:i8, %x\ninfer %0"]}`
	resp, err := http.Post(ts.URL+"/v1/facts", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("facts status = %d", resp.StatusCode)
	}

	code, text := get(t, ts.URL+"/metricsz")
	if code != http.StatusOK {
		t.Fatalf("/metricsz status = %d", code)
	}

	// Counter round-trip: 3 submissions.
	if !strings.Contains(text, "factsvc_exprs 3") {
		t.Fatalf("counter did not round-trip:\n%s", grepLines(text, "factsvc_exprs"))
	}
	// Labeled gauge from the collector: per-worker queue depth (drained
	// by now, so 0) — presence and parseability are the contract.
	if m := regexp.MustCompile(`(?m)^factsvc_worker_queue_depth\{worker="0"\} (-?\d+)$`).FindStringSubmatch(text); m == nil {
		t.Fatalf("labeled worker gauge missing:\n%s", grepLines(text, "worker"))
	}
	// Labeled cache gauge: the probe traffic produced one hit.
	if !strings.Contains(text, `rescache_shard_hits{shard=`) {
		t.Fatalf("per-shard cache gauges missing:\n%s", grepLines(text, "rescache"))
	}

	// Histogram round-trip: cumulative monotone buckets ending at +Inf
	// == _count, for the outcome-labeled solve latency.
	bucketRe := regexp.MustCompile(`(?m)^factsvc_solve_latency_bucket\{outcome="solved",le="([^"]+)"\} (\d+)$`)
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) < 2 {
		t.Fatalf("solved-outcome histogram buckets missing:\n%s", grepLines(text, "solve_latency"))
	}
	prev := int64(-1)
	var inf int64
	for _, m := range matches {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %v", matches)
		}
		prev = v
		if m[1] == "+Inf" {
			inf = v
		}
	}
	countRe := regexp.MustCompile(`(?m)^factsvc_solve_latency_count\{outcome="solved"\} (\d+)$`)
	cm := countRe.FindStringSubmatch(text)
	if cm == nil {
		t.Fatalf("histogram _count missing:\n%s", grepLines(text, "solve_latency"))
	}
	if count, _ := strconv.ParseInt(cm[1], 10, 64); count != inf || count != 2 {
		t.Fatalf("_count = %d, +Inf bucket = %d, want both 2 (two distinct solves)", count, inf)
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// TestEventsStreamDeliversSnapshots reads the SSE stream and requires
// at least two full snapshots, each carrying the metrics payload.
func TestEventsStreamDeliversSnapshots(t *testing.T) {
	ts, _, _, reg := newOpsStack(t)
	reg.Counter("sse_probe").Add(7)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/eventsz?interval=100", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []snapshotPayload
	for sc.Scan() && len(frames) < 2 {
		ln := sc.Text()
		if !strings.HasPrefix(ln, "data: ") {
			continue
		}
		var p snapshotPayload
		if err := json.Unmarshal([]byte(strings.TrimPrefix(ln, "data: ")), &p); err != nil {
			t.Fatalf("frame not JSON: %v\n%s", err, ln)
		}
		frames = append(frames, p)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d SSE snapshots, want ≥2 (scan err %v)", len(frames), sc.Err())
	}
	for i, p := range frames {
		if !p.Ready {
			t.Fatalf("frame %d not ready: %q", i, p.Reason)
		}
		if p.Counts.Counters["sse_probe"] != 7 {
			t.Fatalf("frame %d missing metrics payload: %+v", i, p.Counts.Counters)
		}
	}
	if frames[1].Now < frames[0].Now {
		t.Fatalf("frames out of order: %d then %d", frames[0].Now, frames[1].Now)
	}
}

// TestReadinessLifecycle: /readyz is 503 before Ready, 200 after, and
// 503 with the drain reason during shutdown — the flip a rolling
// restart relies on.
func TestReadinessLifecycle(t *testing.T) {
	reg := metrics.NewRegistry()
	health := NewHealth()
	mux := http.NewServeMux()
	(&Server{Registry: reg, Health: health}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("before Ready: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("liveness must not gate on readiness: %d", code)
	}
	health.Ready()
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("after Ready: %d", code)
	}
	health.NotReady("draining: SIGINT received")
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("during drain: %d %q", code, body)
	}
}

// TestDashboardSelfContained: the dashboard page ships everything
// inline — any external fetch would break on an air-gapped host.
func TestDashboardSelfContained(t *testing.T) {
	ts, _, _, _ := newOpsStack(t)
	code, body := get(t, ts.URL+"/dashboardz")
	if code != http.StatusOK {
		t.Fatalf("/dashboardz status = %d", code)
	}
	for _, want := range []string{"<!doctype html>", "/eventsz", "prefers-color-scheme", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(body, banned) {
			t.Fatalf("dashboard references an external asset (%q)", banned)
		}
	}
}

func TestSlowzServesRing(t *testing.T) {
	reg := metrics.NewRegistry()
	slow := metrics.NewSlowLog(4)
	slow.Note(metrics.SlowEntry{Hash: "00000000deadbeef", Op: "mul", Width: 32, Elapsed: 5 * time.Millisecond})
	mux := http.NewServeMux()
	(&Server{Registry: reg, Slow: slow}).Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	code, body := get(t, ts.URL+"/slowz")
	if code != http.StatusOK {
		t.Fatalf("/slowz status = %d", code)
	}
	var entries []metrics.SlowEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Hash != "00000000deadbeef" {
		t.Fatalf("slowz = %s", body)
	}
}

// TestCollectCacheAggregates checks the derived totals the dashboard
// tiles read.
func TestCollectCacheAggregates(t *testing.T) {
	reg := metrics.NewRegistry()
	cache := rescache.New()
	CollectCache(reg, cache)
	for i := 0; i < 10; i++ {
		k := rescache.Key{Expr: fmt.Sprintf("e%d", i)}
		cache.Put(k, rescache.Entry{})
		cache.Get(k)                                               // hit
		cache.Get(rescache.Key{Expr: "missing", Budget: int64(i)}) // miss
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["rescache_entries"]; got != 10 {
		t.Fatalf("rescache_entries = %d, want 10", got)
	}
	if got := snap.Gauges["rescache_hit_rate_bp"]; got != 5000 {
		t.Fatalf("rescache_hit_rate_bp = %d, want 5000 (50%%)", got)
	}
}
