package ops

// dashboardHTML is the whole live dashboard: one page, no external
// assets (a scrape target may be air-gapped), fed by the /eventsz SSE
// stream. Styling follows the repo's dataviz conventions: a single
// blue series hue (sparklines are single-series, so no legend boxes),
// status colors reserved for the readiness badge and never reused for
// data, light/dark from the same ramps via CSS custom properties, text
// in ink tokens rather than series colors, and a table view of every
// metric so nothing is readable only through a chart.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>dfcheck ops</title>
<style>
:root {
  --surface: #fcfcfb; --panel: #f4f4f2; --border: #e3e3df;
  --ink: #1a1a19; --ink-2: #55554f; --ink-3: #8a8a82;
  --series: #2a78d6;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242422; --border: #3a3a36;
    --ink: #f0f0ec; --ink-2: #b5b5ac; --ink-3: #82827a;
    --series: #3987e5;
    --good: #3fba3f; --critical: #e06c6c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; font-weight: 650; }
h2 { font-size: 13px; margin: 18px 0 6px; color: var(--ink-2); font-weight: 600;
     text-transform: uppercase; letter-spacing: .04em; }
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; }
.badge { font-size: 12px; font-weight: 600; padding: 2px 9px; border-radius: 9px; }
.badge.ready    { color: var(--good); border: 1px solid var(--good); }
.badge.notready { color: var(--critical); border: 1px solid var(--critical); }
.muted { color: var(--ink-3); font-size: 12px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fill, minmax(160px,1fr)); gap: 10px; margin-top: 10px; }
.tile { background: var(--panel); border: 1px solid var(--border); border-radius: 8px; padding: 10px 12px; }
.tile .k { font-size: 11px; color: var(--ink-2); text-transform: uppercase; letter-spacing: .03em; }
.tile .v { font-size: 22px; font-weight: 650; font-variant-numeric: tabular-nums; margin-top: 2px; }
.tile .s { font-size: 11px; color: var(--ink-3); margin-top: 1px; }
.charts { display: grid; grid-template-columns: repeat(auto-fit, minmax(280px,1fr)); gap: 10px; }
.chart { background: var(--panel); border: 1px solid var(--border); border-radius: 8px; padding: 10px 12px; }
.chart svg { width: 100%; height: 64px; display: block; }
.chart .readout { font-size: 12px; color: var(--ink-2); min-height: 16px; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--border); font-size: 13px; }
th { color: var(--ink-2); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; }
code { font-family: ui-monospace, "SF Mono", Menlo, monospace; font-size: 12px; }
details summary { cursor: pointer; color: var(--ink-2); font-size: 13px; margin: 14px 0 6px; }
</style>
</head>
<body>
<header>
  <h1>dfcheck ops</h1>
  <span id="ready" class="badge notready">● connecting…</span>
  <span id="updated" class="muted"></span>
</header>

<div class="tiles" id="tiles"></div>

<h2>Throughput</h2>
<div class="charts">
  <div class="chart"><div class="muted">exprs compared / interval</div>
    <svg id="spark-exprs" viewBox="0 0 300 64" preserveAspectRatio="none"></svg>
    <div class="readout" id="ro-exprs"></div></div>
  <div class="chart"><div class="muted">fact-service queue depth</div>
    <svg id="spark-queue" viewBox="0 0 300 64" preserveAspectRatio="none"></svg>
    <div class="readout" id="ro-queue"></div></div>
</div>

<h2>Latency</h2>
<table id="latency"><thead><tr>
  <th>histogram</th><th class="num">count</th><th class="num">p50</th>
  <th class="num">p95</th><th class="num">p99</th><th class="num">max</th>
</tr></thead><tbody></tbody></table>

<h2>Slow solves</h2>
<table id="slow"><thead><tr>
  <th>hash</th><th>op</th><th class="num">width</th><th class="num">elapsed</th>
  <th class="num">worker</th><th>detail</th>
</tr></thead><tbody></tbody></table>

<details><summary>All metrics (table view)</summary>
<table id="all"><thead><tr><th>name</th><th class="num">value</th></tr></thead><tbody></tbody></table>
</details>

<script>
"use strict";
const hist = { exprs: [], queue: [] };  // last N samples for sparklines
const MAXPTS = 120;
let lastExprs = null;

function fmtDur(ns) {
  if (ns >= 1e9) return (ns/1e9).toFixed(2) + "s";
  if (ns >= 1e6) return (ns/1e6).toFixed(2) + "ms";
  if (ns >= 1e3) return (ns/1e3).toFixed(1) + "µs";
  return ns + "ns";
}
function fmtN(n) { return Number(n).toLocaleString("en-US"); }

function spark(id, roId, pts, fmt) {
  const svg = document.getElementById(id);
  if (!pts.length) { svg.innerHTML = ""; return; }
  const w = 300, h = 64, pad = 3;
  const max = Math.max(1, ...pts), min = Math.min(0, ...pts);
  const x = i => pad + i * (w - 2*pad) / Math.max(1, pts.length - 1);
  const y = v => h - pad - (v - min) * (h - 2*pad) / (max - min || 1);
  const d = pts.map((v,i) => (i ? "L" : "M") + x(i).toFixed(1) + " " + y(v).toFixed(1)).join(" ");
  svg.innerHTML =
    '<path d="' + d + '" fill="none" stroke="var(--series)" stroke-width="2" stroke-linejoin="round"/>' +
    '<circle id="' + id + '-dot" r="3" fill="var(--series)" style="display:none"/>';
  svg.onmousemove = ev => {
    const r = svg.getBoundingClientRect();
    const i = Math.max(0, Math.min(pts.length - 1,
      Math.round((ev.clientX - r.left) / r.width * (pts.length - 1))));
    const dot = document.getElementById(id + "-dot");
    dot.style.display = "";
    dot.setAttribute("cx", x(i)); dot.setAttribute("cy", y(pts[i]));
    document.getElementById(roId).textContent =
      (pts.length - i - 1) + " samples ago: " + fmt(pts[i]);
  };
  svg.onmouseleave = () => {
    document.getElementById(id + "-dot").style.display = "none";
    document.getElementById(roId).textContent = "latest: " + fmt(pts[pts.length-1]);
  };
  document.getElementById(roId).textContent = "latest: " + fmt(pts[pts.length-1]);
}

function tile(k, v, s) {
  return '<div class="tile"><div class="k">' + k + '</div><div class="v">' + v +
         '</div><div class="s">' + (s || "") + '</div></div>';
}

function render(p) {
  const badge = document.getElementById("ready");
  if (p.ready) { badge.className = "badge ready"; badge.textContent = "● ready"; }
  else { badge.className = "badge notready"; badge.textContent = "● " + (p.reason || "not ready"); }
  document.getElementById("updated").textContent =
    "updated " + new Date(p.now_unix_ms).toLocaleTimeString();

  const c = p.metrics.counters || {}, g = p.metrics.gauges || {}, hs = p.metrics.histograms || {};

  // Sparkline samples: exprs delta per push, live queue depth.
  const exprs = c["exprs_compared"] || c["factsvc_exprs"] || 0;
  if (lastExprs !== null) hist.exprs.push(Math.max(0, exprs - lastExprs));
  lastExprs = exprs;
  hist.queue.push(g["factsvc_queue_depth"] || 0);
  for (const k of Object.keys(hist)) if (hist[k].length > MAXPTS) hist[k].shift();
  spark("spark-exprs", "ro-exprs", hist.exprs, v => fmtN(v) + " exprs");
  spark("spark-queue", "ro-queue", hist.queue, v => fmtN(v) + " queued");

  let findings = 0, findingsByKind = [];
  for (const [k, v] of Object.entries(c)) {
    const m = k.match(/^campaign_findings\{kind="([^"]+)"\}$/);
    if (m) { findings += v; findingsByKind.push(m[1] + " " + v); }
  }
  const done = g["campaign_batches_done"], total = g["campaign_batches_total"];
  const eta = g["campaign_eta_seconds"];
  const tiles = [
    tile("exprs compared", fmtN(exprs)),
    tile("solver queries", fmtN(c["solver_queries"] || 0)),
    tile("findings", fmtN(findings), findingsByKind.join(" · ") || "none yet"),
    tile("cache hit rate", g["rescache_hit_rate_bp"] != null
      ? (g["rescache_hit_rate_bp"]/100).toFixed(1) + "%" : "–",
      g["rescache_entries"] != null ? fmtN(g["rescache_entries"]) + " entries" : ""),
    tile("queue depth", fmtN(g["factsvc_queue_depth"] || 0),
      "collapsed " + fmtN(c["factsvc_inflight_collapsed"] || 0) +
      " · rejected " + fmtN(c["factsvc_rejected"] || 0)),
  ];
  if (done != null) {
    tiles.push(tile("campaign", total > 0 ? done + " / " + total + " batches" : fmtN(done) + " batches",
      (eta != null && eta >= 0 ? "ETA " + fmtN(eta) + "s · " : "") +
      ((g["campaign_exprs_per_sec_milli"] || 0) / 1000).toFixed(1) + " exprs/s"));
  }
  document.getElementById("tiles").innerHTML = tiles.join("");

  const lt = [];
  for (const [k, v] of Object.entries(hs)) {
    if (!v.count) continue;
    lt.push('<tr><td><code>' + k.replace(/</g,"&lt;") + '</code></td><td class="num">' + fmtN(v.count) +
      '</td><td class="num">' + fmtDur(v.p50_ns) + '</td><td class="num">' + fmtDur(v.p95_ns) +
      '</td><td class="num">' + fmtDur(v.p99_ns) + '</td><td class="num">' + fmtDur(v.max_ns) + '</td></tr>');
  }
  document.querySelector("#latency tbody").innerHTML =
    lt.sort().join("") || '<tr><td colspan="6" class="muted">no observations yet</td></tr>';

  const st = (p.slow || []).map(e =>
    '<tr><td><code>' + e.hash + '</code></td><td>' + e.op + '</td><td class="num">i' + e.width +
    '</td><td class="num">' + fmtDur(e.elapsed_ns) + '</td><td class="num">' + e.worker +
    '</td><td class="muted">' + (e.err ? "error: " + e.err + " · " : "") + (e.detail || "") + '</td></tr>');
  document.querySelector("#slow tbody").innerHTML =
    st.join("") || '<tr><td colspan="6" class="muted">no slow solves recorded</td></tr>';

  const rows = [];
  for (const [k, v] of Object.entries(c).concat(Object.entries(g)))
    rows.push([k, fmtN(v)]);
  rows.sort((a, b) => a[0] < b[0] ? -1 : 1);
  document.querySelector("#all tbody").innerHTML = rows.map(r =>
    '<tr><td><code>' + r[0].replace(/</g,"&lt;") + '</code></td><td class="num">' + r[1] + '</td></tr>').join("");
}

function connect() {
  const es = new EventSource("/eventsz");
  es.onmessage = ev => render(JSON.parse(ev.data));
  es.onerror = () => {
    const badge = document.getElementById("ready");
    badge.className = "badge notready"; badge.textContent = "● disconnected";
  };
}
connect();
</script>
</body>
</html>
`
