// Package ops is the production observability surface: it mounts the
// operational endpoints — Prometheus exposition, liveness/readiness,
// the self-contained live dashboard, and the slow-solve log — on the
// same mux as the existing debug server (expvar, pprof, /v1/facts).
//
// Endpoints:
//
//	/metricsz    Prometheus text format v0.0.4 (scrape target)
//	/healthz     200 while the process is alive (liveness)
//	/readyz      200 once serving, 503 + reason before startup
//	             completes and again while draining after SIGINT
//	/dashboardz  self-contained HTML live dashboard (no external assets)
//	/eventsz     SSE stream of JSON snapshots feeding the dashboard
//	/slowz       the slow-solve ring as JSON
//
// The package deliberately depends only on metrics and rescache: the
// fact service, campaign, and comparator publish into the shared
// registry, and ops serves whatever the registry holds.
package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dfcheck/internal/metrics"
	"dfcheck/internal/rescache"
)

// Health tracks the process's readiness lifecycle:
// starting → ready → (optionally) draining. Liveness is implicit — a
// process that can answer /healthz is alive.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a not-ready Health with the given startup reason.
func NewHealth() *Health {
	return &Health{reason: "starting"}
}

// Ready marks the process ready to serve.
func (h *Health) Ready() {
	h.mu.Lock()
	h.ready, h.reason = true, ""
	h.mu.Unlock()
}

// NotReady marks the process not ready, with a reason surfaced on
// /readyz (e.g. "draining: SIGINT received").
func (h *Health) NotReady(reason string) {
	h.mu.Lock()
	h.ready, h.reason = false, reason
	h.mu.Unlock()
}

// IsReady reports readiness and, when not ready, the reason.
func (h *Health) IsReady() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// Server bundles the state the ops endpoints serve. Zero-value fields
// degrade gracefully: a nil Health reads as always-ready, a nil Slow as
// an empty slow log.
type Server struct {
	Registry *metrics.Registry
	Health   *Health
	Slow     *metrics.SlowLog
	// Interval is the default SSE push period; 0 selects 1s. Clients
	// may override per-connection with ?interval=<ms> (floor 100ms).
	Interval time.Duration
}

// Register mounts every ops endpoint on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metricsz", s.serveMetrics)
	mux.HandleFunc("/healthz", s.serveHealth)
	mux.HandleFunc("/readyz", s.serveReady)
	mux.HandleFunc("/dashboardz", s.serveDashboard)
	mux.HandleFunc("/eventsz", s.serveEvents)
	mux.HandleFunc("/slowz", s.serveSlow)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Registry == nil {
		return
	}
	if err := s.Registry.WritePrometheus(w); err != nil {
		// The client went away mid-scrape; the next scrape recovers.
		return
	}
}

func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) serveReady(w http.ResponseWriter, r *http.Request) {
	ready, reason := true, ""
	if s.Health != nil {
		ready, reason = s.Health.IsReady()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		http.Error(w, "not ready: "+reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) serveSlow(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	entries := s.Slow.Snapshot()
	if entries == nil {
		entries = []metrics.SlowEntry{}
	}
	_ = json.NewEncoder(w).Encode(entries)
}

// snapshotPayload is one SSE frame: readiness, the full metrics
// snapshot, and the slow-solve ring.
type snapshotPayload struct {
	Ready  bool                `json:"ready"`
	Reason string              `json:"reason,omitempty"`
	Now    int64               `json:"now_unix_ms"`
	Counts metrics.Snapshot    `json:"metrics"`
	Slow   []metrics.SlowEntry `json:"slow,omitempty"`
}

func (s *Server) payload() snapshotPayload {
	p := snapshotPayload{Ready: true, Now: time.Now().UnixMilli()}
	if s.Health != nil {
		p.Ready, p.Reason = s.Health.IsReady()
	}
	if s.Registry != nil {
		p.Counts = s.Registry.Snapshot()
	}
	p.Slow = s.Slow.Snapshot()
	return p
}

// serveEvents streams snapshots as Server-Sent Events. The first frame
// is pushed immediately so the dashboard paints without waiting a full
// interval; subsequent frames follow every Interval (or ?interval=ms).
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := s.Interval
	if interval <= 0 {
		interval = time.Second
	}
	if q := r.URL.Query().Get("interval"); q != "" {
		if ms, err := strconv.Atoi(q); err == nil {
			if ms < 100 {
				ms = 100
			}
			interval = time.Duration(ms) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	push := func() error {
		data, err := json.Marshal(s.payload())
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	if err := push(); err != nil {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if err := push(); err != nil {
				return
			}
		}
	}
}

func (s *Server) serveDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}

// CollectCache registers pull-style per-shard gauges for the result
// cache: occupancy, hits, and misses per stripe plus the aggregate
// hit-rate (in basis points — gauges are integers). Registered as a
// collector so the 64-stripe scan runs per scrape, not per lookup.
func CollectCache(reg *metrics.Registry, cache *rescache.Cache) {
	if reg == nil || cache == nil {
		return
	}
	n := cache.Shards()
	lens := make([]*metrics.Gauge, n)
	hits := make([]*metrics.Gauge, n)
	misses := make([]*metrics.Gauge, n)
	for i := 0; i < n; i++ {
		l := metrics.Labels{"shard": strconv.Itoa(i)}
		lens[i] = reg.GaugeL("rescache_shard_entries", l)
		hits[i] = reg.GaugeL("rescache_shard_hits", l)
		misses[i] = reg.GaugeL("rescache_shard_misses", l)
	}
	gLen := reg.Gauge("rescache_entries")
	gRate := reg.Gauge("rescache_hit_rate_bp")
	reg.RegisterCollector(func() {
		stats := cache.ShardStats()
		total, h, m := 0, uint64(0), uint64(0)
		for i, st := range stats {
			lens[i].Set(int64(st.Len))
			hits[i].Set(int64(st.Hits))
			misses[i].Set(int64(st.Misses))
			total += st.Len
			h += st.Hits
			m += st.Misses
		}
		gLen.Set(int64(total))
		rate := int64(0)
		if h+m > 0 {
			rate = int64(float64(h) / float64(h+m) * 10000)
		}
		gRate.Set(rate)
	})
}
