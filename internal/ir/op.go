// Package ir defines a Souper-style SSA expression IR for fixed-width
// integer computations. A Function is a DAG of instructions with named
// variable leaves and a single root whose dataflow facts are inferred,
// mirroring Souper's "infer %n" form.
//
// The instruction set is the subset of Souper's (itself mostly isomorphic to
// LLVM's integer instructions) exercised by the paper: integer arithmetic
// with nsw/nuw/exact flags, bitwise logic, shifts, comparisons, select,
// width casts, and the bit-counting intrinsics.
package ir

import "fmt"

// Op identifies an instruction kind.
type Op uint8

// Instruction kinds. Binary arithmetic and bitwise ops take two operands of
// the result width. Comparisons take two operands of equal width and produce
// i1. Select takes (i1, w, w) and produces w. Casts carry their result width.
const (
	OpInvalid Op = iota

	// Leaves.
	OpVar   // named input
	OpConst // literal

	// Binary arithmetic. Flags: NSW/NUW on add/sub/mul/shl, Exact on
	// udiv/sdiv/lshr/ashr.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem

	// Bitwise.
	OpAnd
	OpOr
	OpXor

	// Shifts. The shift amount is the second operand, same width as the
	// first; amounts >= width are poison (UB in our quantification).
	OpShl
	OpLShr
	OpAShr

	// Comparisons (result width 1).
	OpEq
	OpNe
	OpULT
	OpULE
	OpSLT
	OpSLE

	// Ternary conditional: select cond, tval, fval.
	OpSelect

	// Width casts.
	OpZExt
	OpSExt
	OpTrunc

	// Unary intrinsics (result width = operand width).
	OpCtPop
	OpBSwap
	OpBitReverse
	OpCttz
	OpCtlz

	// Funnel-shift rotates (two operands: value, amount; amount taken
	// modulo width, never poison).
	OpRotL
	OpRotR

	// Min/max intrinsics (llvm.umin and friends).
	OpUMin
	OpUMax
	OpSMin
	OpSMax

	// Absolute value (llvm.abs; |MinSigned| wraps to MinSigned).
	OpAbs

	// General funnel shifts (llvm.fshl/fshr): three operands (high word,
	// low word, amount); the amount is taken modulo the width, never
	// poison. fshl(x, x, s) is rotl, fshr(x, x, s) is rotr.
	OpFshl
	OpFshr

	// Overflow predicates: the boolean half of llvm.*.with.overflow, as
	// Souper decomposes them. Two operands of equal width, result i1.
	OpUAddO
	OpSAddO
	OpUSubO
	OpSSubO
	OpUMulO
	OpSMulO

	numOps
)

// Flags qualify an instruction with LLVM-style poison-generating attributes.
type Flags uint8

// Flag bits.
const (
	FlagNSW   Flags = 1 << iota // no signed wrap
	FlagNUW                     // no unsigned wrap
	FlagExact                   // division/shift is exact (no remainder / no bits shifted out)
)

func (f Flags) String() string {
	s := ""
	if f&FlagNUW != 0 {
		s += " nuw"
	}
	if f&FlagNSW != 0 {
		s += " nsw"
	}
	if f&FlagExact != 0 {
		s += " exact"
	}
	return s
}

type opInfo struct {
	name       string
	arity      int
	isCast     bool
	isCmp      bool
	boolResult bool // result width is 1 but the op is not a comparison
	validFlags Flags
}

var opTable = [numOps]opInfo{
	OpVar:        {name: "var", arity: 0},
	OpConst:      {name: "const", arity: 0},
	OpAdd:        {name: "add", arity: 2, validFlags: FlagNSW | FlagNUW},
	OpSub:        {name: "sub", arity: 2, validFlags: FlagNSW | FlagNUW},
	OpMul:        {name: "mul", arity: 2, validFlags: FlagNSW | FlagNUW},
	OpUDiv:       {name: "udiv", arity: 2, validFlags: FlagExact},
	OpSDiv:       {name: "sdiv", arity: 2, validFlags: FlagExact},
	OpURem:       {name: "urem", arity: 2},
	OpSRem:       {name: "srem", arity: 2},
	OpAnd:        {name: "and", arity: 2},
	OpOr:         {name: "or", arity: 2},
	OpXor:        {name: "xor", arity: 2},
	OpShl:        {name: "shl", arity: 2, validFlags: FlagNSW | FlagNUW},
	OpLShr:       {name: "lshr", arity: 2, validFlags: FlagExact},
	OpAShr:       {name: "ashr", arity: 2, validFlags: FlagExact},
	OpEq:         {name: "eq", arity: 2, isCmp: true},
	OpNe:         {name: "ne", arity: 2, isCmp: true},
	OpULT:        {name: "ult", arity: 2, isCmp: true},
	OpULE:        {name: "ule", arity: 2, isCmp: true},
	OpSLT:        {name: "slt", arity: 2, isCmp: true},
	OpSLE:        {name: "sle", arity: 2, isCmp: true},
	OpSelect:     {name: "select", arity: 3},
	OpZExt:       {name: "zext", arity: 1, isCast: true},
	OpSExt:       {name: "sext", arity: 1, isCast: true},
	OpTrunc:      {name: "trunc", arity: 1, isCast: true},
	OpCtPop:      {name: "ctpop", arity: 1},
	OpBSwap:      {name: "bswap", arity: 1},
	OpBitReverse: {name: "bitreverse", arity: 1},
	OpCttz:       {name: "cttz", arity: 1},
	OpCtlz:       {name: "ctlz", arity: 1},
	OpRotL:       {name: "rotl", arity: 2},
	OpRotR:       {name: "rotr", arity: 2},
	OpUMin:       {name: "umin", arity: 2},
	OpUMax:       {name: "umax", arity: 2},
	OpSMin:       {name: "smin", arity: 2},
	OpSMax:       {name: "smax", arity: 2},
	OpAbs:        {name: "abs", arity: 1},
	OpFshl:       {name: "fshl", arity: 3},
	OpFshr:       {name: "fshr", arity: 3},
	OpUAddO:      {name: "uaddo", arity: 2, boolResult: true},
	OpSAddO:      {name: "saddo", arity: 2, boolResult: true},
	OpUSubO:      {name: "usubo", arity: 2, boolResult: true},
	OpSSubO:      {name: "ssubo", arity: 2, boolResult: true},
	OpUMulO:      {name: "umulo", arity: 2, boolResult: true},
	OpSMulO:      {name: "smulo", arity: 2, boolResult: true},
}

func (op Op) info() opInfo {
	if op == OpInvalid || op >= numOps {
		panic(fmt.Sprintf("ir: invalid op %d", op))
	}
	return opTable[op]
}

// String returns the Souper mnemonic for the op.
func (op Op) String() string { return op.info().name }

// Arity returns the operand count.
func (op Op) Arity() int { return op.info().arity }

// IsCast reports whether the op is a width-changing cast.
func (op Op) IsCast() bool { return op.info().isCast }

// IsCmp reports whether the op is a comparison (result width 1).
func (op Op) IsCmp() bool { return op.info().isCmp }

// HasBoolResult reports whether the op produces an i1 (comparisons and
// overflow predicates).
func (op Op) HasBoolResult() bool {
	info := op.info()
	return info.isCmp || info.boolResult
}

// ValidFlags returns the flags the op may legally carry.
func (op Op) ValidFlags() Flags { return op.info().validFlags }

// IsBinary reports whether the op is a two-operand, width-preserving
// arithmetic/bitwise/shift operation.
func (op Op) IsBinary() bool {
	return op.Arity() == 2 && !op.HasBoolResult()
}

// IsCommutative reports whether the op's two operands can be swapped
// without changing the result: the arithmetic/bitwise commutative ops,
// the symmetric comparisons, min/max, and the symmetric overflow
// predicates. Canonicalization (internal/canon) sorts the operands of
// these ops so that structurally equivalent expressions hash alike.
func (op Op) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe,
		OpUMin, OpUMax, OpSMin, OpSMax,
		OpUAddO, OpSAddO, OpUMulO, OpSMulO:
		return true
	}
	return false
}

// IsDivRem reports whether the op is a division or remainder (divisor must
// be non-zero for the execution to be well defined).
func (op Op) IsDivRem() bool {
	return op == OpUDiv || op == OpSDiv || op == OpURem || op == OpSRem
}

// IsShift reports whether the op is shl/lshr/ashr (amount >= width is
// poison). Rotates are not included: their amount wraps.
func (op Op) IsShift() bool {
	return op == OpShl || op == OpLShr || op == OpAShr
}

// AllOps returns every non-leaf operation in declaration order. Tools
// that sweep the whole instruction set (the transfer-function verifier
// in internal/absint) iterate this instead of hard-coding the list, so
// a new opcode is picked up automatically.
func AllOps() []Op {
	ops := make([]Op, 0, int(numOps)-int(OpAdd))
	for op := OpAdd; op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// OpFromName returns the op with the given Souper mnemonic.
func OpFromName(name string) (Op, bool) {
	for op := Op(1); op < numOps; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return OpInvalid, false
}
