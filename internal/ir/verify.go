package ir

import (
	"fmt"

	"dfcheck/internal/apint"
)

// Verify checks structural well-formedness of a function: operand counts,
// width agreement, flag validity, and leaf invariants. Functions built via
// Builder or Parse always verify; this is a safety net for hand-assembled
// or mutated DAGs (the harvester's generator self-checks with it).
func Verify(f *Function) error {
	if f == nil || f.Root == nil {
		return fmt.Errorf("ir: nil function or root")
	}
	for _, n := range f.Insts() {
		if err := verifyInst(n); err != nil {
			return err
		}
	}
	inVars := make(map[*Inst]bool, len(f.Vars))
	for _, v := range f.Vars {
		if v.Op != OpVar {
			return fmt.Errorf("ir: non-var %s in Vars list", v.Op)
		}
		inVars[v] = true
	}
	for _, n := range f.Insts() {
		if n.Op == OpVar && !inVars[n] {
			return fmt.Errorf("ir: reachable var %%%s missing from Vars list", n.Name)
		}
	}
	return nil
}

func verifyInst(n *Inst) error {
	if n.Width == 0 || n.Width > apint.MaxWidth {
		return fmt.Errorf("ir: %s has invalid width %d", n.Op, n.Width)
	}
	info := n.Op.info()
	if len(n.Args) != info.arity {
		return fmt.Errorf("ir: %s has %d operands, want %d", n.Op, len(n.Args), info.arity)
	}
	if n.Flags&^info.validFlags != 0 {
		return fmt.Errorf("ir: %s carries invalid flags%s", n.Op, n.Flags)
	}
	switch {
	case n.Op == OpVar:
		if n.Name == "" {
			return fmt.Errorf("ir: unnamed var")
		}
		if n.HasRange && (n.Lo.Width() != n.Width || n.Hi.Width() != n.Width) {
			return fmt.Errorf("ir: var %%%s range width mismatch", n.Name)
		}
	case n.Op == OpConst:
		if n.Val.Width() != n.Width {
			return fmt.Errorf("ir: const width mismatch %d vs %d", n.Val.Width(), n.Width)
		}
	case info.isCmp || info.boolResult:
		if n.Width != 1 {
			return fmt.Errorf("ir: %s result must be i1", n.Op)
		}
		if n.Args[0].Width != n.Args[1].Width {
			return fmt.Errorf("ir: %s operand widths differ", n.Op)
		}
	case n.Op == OpSelect:
		if n.Args[0].Width != 1 {
			return fmt.Errorf("ir: select condition must be i1")
		}
		if n.Args[1].Width != n.Width || n.Args[2].Width != n.Width {
			return fmt.Errorf("ir: select arm width mismatch")
		}
	case n.Op == OpTrunc:
		if n.Width >= n.Args[0].Width {
			return fmt.Errorf("ir: trunc must narrow (i%d to i%d)", n.Args[0].Width, n.Width)
		}
	case n.Op == OpZExt, n.Op == OpSExt:
		if n.Width <= n.Args[0].Width {
			return fmt.Errorf("ir: %s must widen (i%d to i%d)", n.Op, n.Args[0].Width, n.Width)
		}
	case n.Op == OpBSwap:
		if n.Width%8 != 0 {
			return fmt.Errorf("ir: bswap width %d not a multiple of 8", n.Width)
		}
		fallthrough
	default:
		for i, a := range n.Args {
			if a.Width != n.Width {
				return fmt.Errorf("ir: %s operand %d width %d != result width %d", n.Op, i, a.Width, n.Width)
			}
		}
	}
	return nil
}
