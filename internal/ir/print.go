package ir

import (
	"fmt"
	"sort"
	"strings"
)

// flagSuffix renders flags in Souper's concatenated mnemonic style
// (addnsw, addnw, udivexact, ...).
func flagSuffix(f Flags) string {
	switch {
	case f&FlagNSW != 0 && f&FlagNUW != 0:
		return "nw"
	case f&FlagNSW != 0:
		return "nsw"
	case f&FlagNUW != 0:
		return "nuw"
	case f&FlagExact != 0:
		return "exact"
	}
	return ""
}

// String renders the function in Souper's textual form:
//
//	%x:i8 = var (range=[0,5))
//	%0:i8 = add 1:i8, %x
//	infer %0
//
// Constants appear inline as value:width operands; every non-leaf
// instruction gets its own line with a %N name; variables keep their names.
func (f *Function) String() string {
	names := make(map[*Inst]string)
	var sb strings.Builder

	insts := f.Insts()
	// Name variables first, in declaration order, then number the rest,
	// skipping numbers a variable already claims (a reduced expression
	// can keep var %0 after the instruction once named %0 is gone).
	taken := make(map[string]bool)
	for _, v := range f.Vars {
		names[v] = "%" + v.Name
		taken[v.Name] = true
		fmt.Fprintf(&sb, "%%%s:i%d = var", v.Name, v.Width)
		if v.HasRange {
			fmt.Fprintf(&sb, " (range=[%d,%d))", v.Lo.Int64(), v.Hi.Int64())
		}
		sb.WriteByte('\n')
	}
	for _, n := range insts {
		if n.Op == OpVar {
			taken[n.Name] = true
		}
	}
	next := 0
	for _, n := range insts {
		switch n.Op {
		case OpVar:
			if _, ok := names[n]; !ok {
				// A variable not collected in f.Vars (hand-built
				// Function); name and declare it anyway.
				names[n] = "%" + n.Name
				fmt.Fprintf(&sb, "%%%s:i%d = var\n", n.Name, n.Width)
			}
			continue
		case OpConst:
			names[n] = n.Val.String()
			continue
		}
		for taken[fmt.Sprint(next)] {
			next++
		}
		name := fmt.Sprintf("%%%d", next)
		next++
		names[n] = name
		fmt.Fprintf(&sb, "%s:i%d = %s%s", name, n.Width, n.Op, flagSuffix(n.Flags))
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte(' ')
			sb.WriteString(names[a])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "infer %s\n", names[f.Root])
	return sb.String()
}

// SortedVarNames returns the function's variable names in lexical order,
// for deterministic reporting.
func (f *Function) SortedVarNames() []string {
	names := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		names[i] = v.Name
	}
	sort.Strings(names)
	return names
}
