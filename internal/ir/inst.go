package ir

import (
	"fmt"

	"dfcheck/internal/apint"
)

// Inst is one SSA instruction in an expression DAG. Instructions are
// immutable once built; sharing is by pointer, so structurally equal
// sub-expressions built through a Builder are physically shared.
type Inst struct {
	Op    Op
	Width uint
	Flags Flags
	Args  []*Inst

	// Name is the variable name for OpVar (without the leading '%').
	Name string

	// Val is the literal for OpConst.
	Val apint.Int

	// Range metadata for OpVar, mirroring Souper's (range=[lo,hi))
	// attribute and LLVM's !range metadata: the variable's value is
	// constrained to the half-open, possibly wrapping interval [Lo, Hi).
	HasRange bool
	Lo, Hi   apint.Int

	// id is a stable ordering key assigned by the Builder.
	id int
}

// IsConst reports whether the instruction is a literal.
func (n *Inst) IsConst() bool { return n.Op == OpConst }

// IsVar reports whether the instruction is an input variable.
func (n *Inst) IsVar() bool { return n.Op == OpVar }

// ConstValue returns the literal value; panics on non-constants.
func (n *Inst) ConstValue() apint.Int {
	if n.Op != OpConst {
		panic("ir: ConstValue on non-constant")
	}
	return n.Val
}

// Function is an expression DAG with a single root (Souper's "infer"
// instruction). Vars lists the input variables in first-use order.
type Function struct {
	Root *Inst
	Vars []*Inst
}

// Width returns the bit width of the root value.
func (f *Function) Width() uint { return f.Root.Width }

// Insts returns every instruction reachable from the root in topological
// order (operands before users).
func (f *Function) Insts() []*Inst {
	var order []*Inst
	seen := make(map[*Inst]bool)
	var visit func(n *Inst)
	visit = func(n *Inst) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, a := range n.Args {
			visit(a)
		}
		order = append(order, n)
	}
	visit(f.Root)
	return order
}

// NumInsts returns the number of distinct instructions in the DAG,
// excluding variables and constants (matching how the paper counts Souper
// instructions per expression).
func (f *Function) NumInsts() int {
	n := 0
	for _, in := range f.Insts() {
		if !in.IsVar() && !in.IsConst() {
			n++
		}
	}
	return n
}

// Builder constructs hash-consed instruction DAGs: structurally identical
// instructions are returned as the same pointer, so DAG size reflects the
// number of distinct computations.
type Builder struct {
	consts map[constKey]*Inst
	exprs  map[exprKey]*Inst
	vars   map[string]*Inst
	varSeq []*Inst
	nextID int
}

type constKey struct {
	w uint
	v uint64
}

type exprKey struct {
	op    Op
	width uint
	flags Flags
	a0    *Inst
	a1    *Inst
	a2    *Inst
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		consts: make(map[constKey]*Inst),
		exprs:  make(map[exprKey]*Inst),
		vars:   make(map[string]*Inst),
	}
}

func (b *Builder) assignID(n *Inst) *Inst {
	n.id = b.nextID
	b.nextID++
	return n
}

// Var returns the variable with the given name and width, creating it on
// first use. Asking for an existing name with a different width panics.
func (b *Builder) Var(name string, w uint) *Inst {
	if v, ok := b.vars[name]; ok {
		if v.Width != w {
			panic(fmt.Sprintf("ir: var %%%s redeclared with width %d (was %d)", name, w, v.Width))
		}
		return v
	}
	v := b.assignID(&Inst{Op: OpVar, Width: w, Name: name})
	b.vars[name] = v
	b.varSeq = append(b.varSeq, v)
	return v
}

// VarRange returns a fresh range-constrained variable. The range attaches at
// creation; re-requesting the name returns the same instruction.
func (b *Builder) VarRange(name string, w uint, lo, hi apint.Int) *Inst {
	if _, ok := b.vars[name]; ok {
		panic(fmt.Sprintf("ir: range metadata on already-created var %%%s", name))
	}
	v := b.Var(name, w)
	if lo.Width() != w || hi.Width() != w {
		panic("ir: range bounds width mismatch")
	}
	v.HasRange = true
	v.Lo, v.Hi = lo, hi
	return v
}

// Const returns the literal with the given value.
func (b *Builder) Const(v apint.Int) *Inst {
	k := constKey{v.Width(), v.Uint64()}
	if c, ok := b.consts[k]; ok {
		return c
	}
	c := b.assignID(&Inst{Op: OpConst, Width: v.Width(), Val: v})
	b.consts[k] = c
	return c
}

// ConstInt is shorthand for Const(apint.New(w, v)).
func (b *Builder) ConstInt(w uint, v uint64) *Inst { return b.Const(apint.New(w, v)) }

// Build constructs (or reuses) an instruction. It validates arity, widths,
// and flags, so an Inst obtained from a Builder is always well formed.
func (b *Builder) Build(op Op, flags Flags, args ...*Inst) *Inst {
	info := op.info()
	if op == OpVar || op == OpConst {
		panic("ir: Build cannot create leaves; use Var/Const")
	}
	if len(args) != info.arity {
		panic(fmt.Sprintf("ir: %s expects %d operands, got %d", op, info.arity, len(args)))
	}
	if flags&^info.validFlags != 0 {
		panic(fmt.Sprintf("ir: invalid flags%s for %s", flags, op))
	}
	var w uint
	switch {
	case info.isCast:
		panic("ir: casts need an explicit width; use BuildCast")
	case info.isCmp || info.boolResult:
		if args[0].Width != args[1].Width {
			panic(fmt.Sprintf("ir: %s operand width mismatch %d vs %d", op, args[0].Width, args[1].Width))
		}
		w = 1
	case op == OpSelect:
		if args[0].Width != 1 {
			panic("ir: select condition must be i1")
		}
		if args[1].Width != args[2].Width {
			panic(fmt.Sprintf("ir: select arm width mismatch %d vs %d", args[1].Width, args[2].Width))
		}
		w = args[1].Width
	default:
		w = args[0].Width
		for _, a := range args[1:] {
			if a.Width != w {
				panic(fmt.Sprintf("ir: %s operand width mismatch %d vs %d", op, w, a.Width))
			}
		}
	}
	return b.intern(op, w, flags, args)
}

// BuildCast constructs a zext/sext/trunc to the given width.
func (b *Builder) BuildCast(op Op, w uint, arg *Inst) *Inst {
	if !op.IsCast() {
		panic(fmt.Sprintf("ir: BuildCast on non-cast %s", op))
	}
	switch op {
	case OpTrunc:
		if w >= arg.Width {
			panic(fmt.Sprintf("ir: trunc i%d to i%d must narrow", arg.Width, w))
		}
	default:
		if w <= arg.Width {
			panic(fmt.Sprintf("ir: %s i%d to i%d must widen", op, arg.Width, w))
		}
	}
	return b.intern(op, w, 0, []*Inst{arg})
}

func (b *Builder) intern(op Op, w uint, flags Flags, args []*Inst) *Inst {
	k := exprKey{op: op, width: w, flags: flags}
	k.a0 = args[0]
	if len(args) > 1 {
		k.a1 = args[1]
	}
	if len(args) > 2 {
		k.a2 = args[2]
	}
	if n, ok := b.exprs[k]; ok {
		return n
	}
	n := b.assignID(&Inst{Op: op, Width: w, Flags: flags, Args: append([]*Inst(nil), args...)})
	b.exprs[k] = n
	return n
}

// Convenience constructors for the common shapes.

// Add builds a wrapping addition.
func (b *Builder) Add(x, y *Inst) *Inst { return b.Build(OpAdd, 0, x, y) }

// Sub builds a wrapping subtraction.
func (b *Builder) Sub(x, y *Inst) *Inst { return b.Build(OpSub, 0, x, y) }

// Mul builds a wrapping multiplication.
func (b *Builder) Mul(x, y *Inst) *Inst { return b.Build(OpMul, 0, x, y) }

// And builds a bitwise conjunction.
func (b *Builder) And(x, y *Inst) *Inst { return b.Build(OpAnd, 0, x, y) }

// Or builds a bitwise disjunction.
func (b *Builder) Or(x, y *Inst) *Inst { return b.Build(OpOr, 0, x, y) }

// Xor builds a bitwise exclusive-or.
func (b *Builder) Xor(x, y *Inst) *Inst { return b.Build(OpXor, 0, x, y) }

// Shl builds a left shift.
func (b *Builder) Shl(x, y *Inst) *Inst { return b.Build(OpShl, 0, x, y) }

// LShr builds a logical right shift.
func (b *Builder) LShr(x, y *Inst) *Inst { return b.Build(OpLShr, 0, x, y) }

// AShr builds an arithmetic right shift.
func (b *Builder) AShr(x, y *Inst) *Inst { return b.Build(OpAShr, 0, x, y) }

// Select builds a ternary conditional.
func (b *Builder) Select(c, t, f *Inst) *Inst { return b.Build(OpSelect, 0, c, t, f) }

// ZExt builds a zero extension to width w.
func (b *Builder) ZExt(x *Inst, w uint) *Inst { return b.BuildCast(OpZExt, w, x) }

// SExt builds a sign extension to width w.
func (b *Builder) SExt(x *Inst, w uint) *Inst { return b.BuildCast(OpSExt, w, x) }

// Trunc builds a truncation to width w.
func (b *Builder) Trunc(x *Inst, w uint) *Inst { return b.BuildCast(OpTrunc, w, x) }

// Function wraps root into a Function, collecting its reachable variables
// in creation order.
func (b *Builder) Function(root *Inst) *Function {
	reach := make(map[*Inst]bool)
	var visit func(n *Inst)
	visit = func(n *Inst) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, a := range n.Args {
			visit(a)
		}
	}
	visit(root)
	var vars []*Inst
	for _, v := range b.varSeq {
		if reach[v] {
			vars = append(vars, v)
		}
	}
	return &Function{Root: root, Vars: vars}
}
