package ir

import (
	"fmt"
	"strconv"
	"strings"

	"dfcheck/internal/apint"
)

// Parse reads a function in Souper textual form (the format produced by
// Function.String). Grammar, one statement per line:
//
//	%name:iN = var [(range=[lo,hi))]
//	%name:iN = op[flags] operand, operand ...
//	infer %name
//
// Operands are %name references or value:iN constants (value may be
// negative). Comments start with ';' and run to end of line.
func Parse(src string) (*Function, error) {
	p := &parser{b: NewBuilder(), defs: make(map[string]*Inst)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if p.root == nil {
		return nil, fmt.Errorf("missing infer statement")
	}
	return p.b.Function(p.root), nil
}

// MustParse is Parse that panics on error, for tests and embedded corpora.
func MustParse(src string) *Function {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	b    *Builder
	defs map[string]*Inst
	root *Inst
}

func (p *parser) statement(line string) error {
	if rest, ok := strings.CutPrefix(line, "infer "); ok {
		if p.root != nil {
			return fmt.Errorf("duplicate infer")
		}
		n, err := p.operandRef(strings.TrimSpace(rest), 0)
		if err != nil {
			return err
		}
		p.root = n
		return nil
	}

	lhs, rhs, ok := strings.Cut(line, "=")
	if !ok {
		return fmt.Errorf("expected assignment or infer, got %q", line)
	}
	name, width, err := parseTypedName(strings.TrimSpace(lhs))
	if err != nil {
		return err
	}
	if _, dup := p.defs[name]; dup {
		return fmt.Errorf("%%%s redefined", name)
	}
	rhs = strings.TrimSpace(rhs)

	if rhs == "var" || strings.HasPrefix(rhs, "var ") || strings.HasPrefix(rhs, "var(") {
		v, err := p.parseVar(name, width, strings.TrimSpace(strings.TrimPrefix(rhs, "var")))
		if err != nil {
			return err
		}
		p.defs[name] = v
		return nil
	}

	mnemonic, operands, _ := strings.Cut(rhs, " ")
	op, flags, err := parseMnemonic(mnemonic)
	if err != nil {
		return err
	}
	var args []*Inst
	if strings.TrimSpace(operands) != "" {
		for _, tok := range strings.Split(operands, ",") {
			a, err := p.operand(strings.TrimSpace(tok), width, op, len(args))
			if err != nil {
				return err
			}
			args = append(args, a)
		}
	}
	if len(args) != op.Arity() {
		return fmt.Errorf("%s expects %d operands, got %d", op, op.Arity(), len(args))
	}

	n, err := p.build(op, flags, width, args)
	if err != nil {
		return err
	}
	if n.Width != width {
		return fmt.Errorf("%%%s declared i%d but %s produces i%d", name, width, op, n.Width)
	}
	p.defs[name] = n
	return nil
}

func (p *parser) build(op Op, flags Flags, width uint, args []*Inst) (n *Inst, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if op.IsCast() {
		return p.b.BuildCast(op, width, args[0]), nil
	}
	return p.b.Build(op, flags, args...), nil
}

func (p *parser) parseVar(name string, width uint, attrs string) (*Inst, error) {
	if attrs == "" {
		return p.b.Var(name, width), nil
	}
	if !strings.HasPrefix(attrs, "(range=[") || !strings.HasSuffix(attrs, "))") {
		return nil, fmt.Errorf("bad var attribute %q (want (range=[lo,hi)))", attrs)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(attrs, "(range=["), "))")
	loStr, hiStr, ok := strings.Cut(body, ",")
	if !ok {
		return nil, fmt.Errorf("bad range %q", attrs)
	}
	lo, err := strconv.ParseInt(strings.TrimSpace(loStr), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad range lower bound: %v", err)
	}
	hi, err := strconv.ParseInt(strings.TrimSpace(hiStr), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad range upper bound: %v", err)
	}
	return p.b.VarRange(name, width, apint.NewSigned(width, lo), apint.NewSigned(width, hi)), nil
}

// operand parses an operand token. The expected width of a %ref is checked
// by Build; constants without explicit width inherit one from context
// (needed for shift amounts and select conditions, whose width differs from
// the result width in general — so constants in this IR always carry :iN;
// only an untyped token is an error).
func (p *parser) operand(tok string, resultWidth uint, op Op, argIdx int) (*Inst, error) {
	if strings.HasPrefix(tok, "%") {
		return p.operandRef(tok, resultWidth)
	}
	valStr, widthStr, ok := strings.Cut(tok, ":")
	if !ok {
		// Allow untyped constants where the width is unambiguous: any
		// operand of a width-preserving op, or the non-condition arms
		// of select.
		w := resultWidth
		if op.HasBoolResult() {
			return nil, fmt.Errorf("constant %q needs a :iN width in a comparison", tok)
		}
		if op == OpSelect && argIdx == 0 {
			w = 1
		}
		if op.IsCast() {
			return nil, fmt.Errorf("constant %q needs a :iN width in a cast", tok)
		}
		v, err := parseConstValue(valStr, w)
		if err != nil {
			return nil, err
		}
		return p.b.Const(v), nil
	}
	w, err := parseWidth(widthStr)
	if err != nil {
		return nil, err
	}
	v, err := parseConstValue(valStr, w)
	if err != nil {
		return nil, err
	}
	return p.b.Const(v), nil
}

func (p *parser) operandRef(tok string, _ uint) (*Inst, error) {
	if !strings.HasPrefix(tok, "%") {
		return nil, fmt.Errorf("expected %%name, got %q", tok)
	}
	n, ok := p.defs[tok[1:]]
	if !ok {
		return nil, fmt.Errorf("use of undefined value %s", tok)
	}
	return n, nil
}

func parseConstValue(s string, w uint) (apint.Int, error) {
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return apint.New(w, v), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return apint.Int{}, fmt.Errorf("bad constant %q: %v", s, err)
	}
	return apint.NewSigned(w, v), nil
}

func parseTypedName(s string) (string, uint, error) {
	if !strings.HasPrefix(s, "%") {
		return "", 0, fmt.Errorf("expected %%name:iN, got %q", s)
	}
	name, widthStr, ok := strings.Cut(s[1:], ":")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("expected %%name:iN, got %q", s)
	}
	w, err := parseWidth(widthStr)
	if err != nil {
		return "", 0, err
	}
	return name, w, nil
}

func parseWidth(s string) (uint, error) {
	if !strings.HasPrefix(s, "i") {
		return 0, fmt.Errorf("bad type %q (want iN)", s)
	}
	w, err := strconv.ParseUint(s[1:], 10, 8)
	if err != nil || w == 0 || w > apint.MaxWidth {
		return 0, fmt.Errorf("bad width %q (want 1..%d)", s, apint.MaxWidth)
	}
	return uint(w), nil
}

// parseMnemonic splits Souper's concatenated op+flag mnemonics:
// addnsw, addnuw, addnw, udivexact, ...
func parseMnemonic(s string) (Op, Flags, error) {
	if op, ok := OpFromName(s); ok {
		return op, 0, nil
	}
	for suffix, flags := range map[string]Flags{
		"nw":    FlagNSW | FlagNUW,
		"nsw":   FlagNSW,
		"nuw":   FlagNUW,
		"exact": FlagExact,
	} {
		if base, ok := strings.CutSuffix(s, suffix); ok {
			if op, ok := OpFromName(base); ok {
				if flags&^op.ValidFlags() != 0 {
					return OpInvalid, 0, fmt.Errorf("flag %q not valid for %s", suffix, base)
				}
				return op, flags, nil
			}
		}
	}
	return OpInvalid, 0, fmt.Errorf("unknown instruction %q", s)
}
