package ir

import (
	"strings"
	"testing"

	"dfcheck/internal/apint"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	one := b.ConstInt(8, 1)
	sum := b.Add(x, one)
	f := b.Function(sum)

	if f.Width() != 8 {
		t.Errorf("width = %d", f.Width())
	}
	if len(f.Vars) != 1 || f.Vars[0].Name != "x" {
		t.Errorf("vars = %v", f.Vars)
	}
	if f.NumInsts() != 1 {
		t.Errorf("NumInsts = %d, want 1", f.NumInsts())
	}
	if err := Verify(f); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestBuilderHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	s1 := b.Add(x, y)
	s2 := b.Add(x, y)
	if s1 != s2 {
		t.Error("identical adds not shared")
	}
	if b.Add(y, x) == s1 {
		t.Error("add with swapped operands should be distinct (no commutativity canonicalization)")
	}
	if b.ConstInt(8, 5) != b.ConstInt(8, 5) {
		t.Error("identical constants not shared")
	}
	if b.ConstInt(8, 5) == b.ConstInt(16, 5) {
		t.Error("constants of different widths shared")
	}
	if b.Var("x", 8) != x {
		t.Error("var lookup by name failed")
	}
	nsw := b.Build(OpAdd, FlagNSW, x, y)
	if nsw == s1 {
		t.Error("flagged op shared with unflagged")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"width mismatch", func(b *Builder) { b.Add(b.Var("a", 8), b.Var("b", 16)) }},
		{"bad arity", func(b *Builder) { b.Build(OpAdd, 0, b.Var("a", 8)) }},
		{"bad flags", func(b *Builder) { b.Build(OpAnd, FlagNSW, b.Var("a", 8), b.Var("b", 8)) }},
		{"select cond width", func(b *Builder) { b.Select(b.Var("c", 8), b.Var("a", 8), b.Var("b", 8)) }},
		{"trunc widen", func(b *Builder) { b.Trunc(b.Var("a", 8), 16) }},
		{"zext narrow", func(b *Builder) { b.ZExt(b.Var("a", 8), 4) }},
		{"var redeclared", func(b *Builder) { b.Var("a", 8); b.Var("a", 16) }},
		{"leaf via Build", func(b *Builder) { b.Build(OpVar, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f(NewBuilder())
		})
	}
}

func TestParseSimple(t *testing.T) {
	f, err := Parse(`
		; the paper's srem example
		%0:i32 = var
		%1:i32 = srem %0, 3:i32
		infer %1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Root.Op != OpSRem {
		t.Errorf("root op = %v", f.Root.Op)
	}
	if f.Root.Args[1].ConstValue().Uint64() != 3 {
		t.Errorf("const operand = %v", f.Root.Args[1].Val)
	}
	if len(f.Vars) != 1 || f.Vars[0].Name != "0" {
		t.Errorf("vars = %v", f.Vars)
	}
}

func TestParseRangeMetadata(t *testing.T) {
	f, err := Parse(`
		%x:i32 = var (range=[1,7))
		%0:i32 = and 4294967295:i32, %x
		infer %0
	`)
	if err != nil {
		t.Fatal(err)
	}
	v := f.Vars[0]
	if !v.HasRange || v.Lo.Uint64() != 1 || v.Hi.Uint64() != 7 {
		t.Errorf("range = [%v,%v) hasRange=%v", v.Lo, v.Hi, v.HasRange)
	}
}

func TestParseNegativeRange(t *testing.T) {
	f := MustParse(`
		%x:i8 = var (range=[-7,8))
		infer %x
	`)
	v := f.Vars[0]
	if v.Lo.Int64() != -7 || v.Hi.Int64() != 8 {
		t.Errorf("range = [%d,%d)", v.Lo.Int64(), v.Hi.Int64())
	}
}

func TestParseFlagsAndCasts(t *testing.T) {
	f := MustParse(`
		%x:i8 = var
		%0:i8 = mulnsw 10:i8, %x
		%1:i16 = sext %0
		%2:i16 = addnw %1, %1
		%3:i8 = trunc %2
		infer %3
	`)
	insts := f.Insts()
	var ops []string
	for _, n := range insts {
		if !n.IsVar() && !n.IsConst() {
			ops = append(ops, n.Op.String()+flagSuffix(n.Flags))
		}
	}
	want := "mulnsw sext addnw trunc"
	if got := strings.Join(ops, " "); got != want {
		t.Errorf("ops = %q, want %q", got, want)
	}
}

func TestParseSelectAndCmp(t *testing.T) {
	f := MustParse(`
		%x:i32 = var
		%0:i1 = eq 0:i32, %x
		%1:i32 = select %0, 1:i32, %x
		infer %1
	`)
	if f.Root.Op != OpSelect || f.Root.Width != 32 {
		t.Errorf("root = %v i%d", f.Root.Op, f.Root.Width)
	}
	if f.Root.Args[0].Width != 1 {
		t.Errorf("cond width = %d", f.Root.Args[0].Width)
	}
}

func TestParseUntypedConstant(t *testing.T) {
	// Untyped constants are allowed where the width is unambiguous.
	f := MustParse(`
		%x:i8 = var
		%0:i8 = add 1, %x
		infer %0
	`)
	if f.Root.Args[0].ConstValue().Width() != 8 {
		t.Errorf("inherited width = %d", f.Root.Args[0].ConstValue().Width())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no infer", "%x:i8 = var\n", "missing infer"},
		{"undefined", "%0:i8 = add %x, %y\ninfer %0", "undefined value"},
		{"redefined", "%x:i8 = var\n%x:i8 = var\ninfer %x", "redefined"},
		{"unknown op", "%x:i8 = var\n%0:i8 = frobnicate %x, %x\ninfer %0", "unknown instruction"},
		{"bad width", "%x:i99 = var\ninfer %x", "bad width"},
		{"zero width", "%x:i0 = var\ninfer %x", "bad width"},
		{"width mismatch decl", "%x:i8 = var\n%0:i16 = add %x, %x\ninfer %0", "declared i16"},
		{"arity", "%x:i8 = var\n%0:i8 = add %x\ninfer %0", "expects 2 operands"},
		{"bad flag", "%x:i8 = var\n%0:i8 = andnsw %x, %x\ninfer %0", "not valid"},
		{"duplicate infer", "%x:i8 = var\ninfer %x\ninfer %x", "duplicate infer"},
		{"bad range", "%x:i8 = var (range=[1..3))\ninfer %x", "bad range"},
		{"cmp untyped const", "%x:i8 = var\n%0:i1 = eq 0, %x\ninfer %0", "needs a :iN width"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0\n",
		"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1\n",
		"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0\n",
		"%x:i32 = var\n%0:i64 = sext %x\n%1:i64 = mulnw %0, %0\n%2:i1 = slt %1, 100:i64\ninfer %2\n",
		"%a:i16 = var\n%b:i16 = var\n%0:i1 = ult %a, %b\n%1:i16 = select %0, %a, %b\ninfer %1\n",
		"%x:i32 = var\n%0:i32 = ctpop %x\n%1:i32 = bswap %0\n%2:i32 = rotl %1, 3:i32\ninfer %2\n",
		"%x:i8 = var\n%y:i8 = var\n%0:i8 = umin %x, %y\n%1:i8 = smax %0, %x\n%2:i8 = abs %1\ninfer %2\n",
		"%a:i8 = var\n%b:i8 = var\n%s:i8 = var\n%0:i8 = fshl %a, %b, %s\n%1:i8 = fshr %b, %0, %s\ninfer %1\n",
		"%x:i8 = var\n%y:i8 = var\n%0:i1 = uaddo %x, %y\n%1:i1 = smulo %x, %y\n%2:i1 = xor %0, %1\ninfer %2\n",
	}
	for _, src := range srcs {
		f1 := MustParse(src)
		s1 := f1.String()
		f2 := MustParse(s1)
		s2 := f2.String()
		if s1 != s2 {
			t.Errorf("round trip not stable:\nfirst:\n%ssecond:\n%s", s1, s2)
		}
		if err := Verify(f2); err != nil {
			t.Errorf("Verify after round trip: %v", err)
		}
	}
}

func TestPrintSharing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	sq := b.Mul(x, x)
	f := b.Function(b.Add(sq, sq))
	s := f.String()
	if strings.Count(s, "mul") != 1 {
		t.Errorf("shared mul printed more than once:\n%s", s)
	}
}

func TestNumInstsCountsDAGNodes(t *testing.T) {
	// A diamond: (x+1)*(x+1) shared = 2 insts, not 3.
	b := NewBuilder()
	x := b.Var("x", 8)
	inc := b.Add(x, b.ConstInt(8, 1))
	f := b.Function(b.Mul(inc, inc))
	if got := f.NumInsts(); got != 2 {
		t.Errorf("NumInsts = %d, want 2", got)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	f := b.Function(b.Add(x, x))

	// Corrupt the DAG in ways the Builder can't produce.
	bad := &Inst{Op: OpAdd, Width: 8, Args: []*Inst{x}}
	if err := Verify(&Function{Root: bad, Vars: f.Vars}); err == nil {
		t.Error("Verify accepted wrong arity")
	}
	bad2 := &Inst{Op: OpEq, Width: 8, Args: []*Inst{x, x}}
	if err := Verify(&Function{Root: bad2, Vars: f.Vars}); err == nil {
		t.Error("Verify accepted non-i1 comparison")
	}
	bad3 := &Inst{Op: OpBSwap, Width: 4, Args: []*Inst{{Op: OpVar, Name: "v", Width: 4}}}
	if err := Verify(&Function{Root: bad3, Vars: []*Inst{bad3.Args[0]}}); err == nil {
		t.Error("Verify accepted bswap of width 4")
	}
	if err := Verify(&Function{Root: f.Root, Vars: nil}); err == nil {
		t.Error("Verify accepted missing Vars entry")
	}
	if err := Verify(nil); err == nil {
		t.Error("Verify accepted nil function")
	}
}

func TestOpMetadata(t *testing.T) {
	if !OpUDiv.IsDivRem() || !OpSRem.IsDivRem() || OpAdd.IsDivRem() {
		t.Error("IsDivRem wrong")
	}
	if !OpShl.IsShift() || OpRotL.IsShift() {
		t.Error("IsShift wrong")
	}
	if !OpEq.IsCmp() || OpSelect.IsCmp() {
		t.Error("IsCmp wrong")
	}
	if !OpZExt.IsCast() || OpAdd.IsCast() {
		t.Error("IsCast wrong")
	}
	if op, ok := OpFromName("ashr"); !ok || op != OpAShr {
		t.Error("OpFromName wrong")
	}
	if _, ok := OpFromName("nonsense"); ok {
		t.Error("OpFromName accepted nonsense")
	}
	if OpAdd.ValidFlags() != FlagNSW|FlagNUW {
		t.Error("ValidFlags wrong for add")
	}
}

func TestConstValuePanicsOnNonConst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ConstValue on var did not panic")
		}
	}()
	(&Inst{Op: OpVar, Width: 8, Name: "x"}).ConstValue()
}

func TestFunctionVarsOrderIsFirstUse(t *testing.T) {
	f := MustParse(`
		%b:i8 = var
		%a:i8 = var
		%0:i8 = add %a, %b
		infer %0
	`)
	if f.Vars[0].Name != "b" || f.Vars[1].Name != "a" {
		t.Errorf("vars order = %v", []string{f.Vars[0].Name, f.Vars[1].Name})
	}
	if got := f.SortedVarNames(); got[0] != "a" || got[1] != "b" {
		t.Errorf("sorted = %v", got)
	}
}

func TestLargeWidthBoundary(t *testing.T) {
	f := MustParse("%x:i64 = var\n%0:i64 = add %x, 18446744073709551615:i64\ninfer %0")
	if f.Root.Args[1].ConstValue().Ne(apint.AllOnes(64)) {
		t.Errorf("max u64 constant = %v", f.Root.Args[1].Val)
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	// The parser must return errors, not panic, on arbitrary input —
	// including mutations of valid programs.
	inputs := []string{
		"", "%", "infer", "infer %", "%x:i8", "%x:i8 =", "%x:i8 = ",
		"%x:i8 = var (range=[)\ninfer %x",
		"%x:i8 = var (range=[1,2,3))\ninfer %x",
		"%:i8 = var\ninfer %",
		"%x:i8 = var\n%0:i8 = add %x,\ninfer %0",
		"%x:i8 = var\n%0:i8 = add , %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = select %x, %x, %x\ninfer %0",
		"%x:i8 = var\n%0:i4 = trunc %x\n%1:i8 = trunc %0\ninfer %1",
		"%x:i1 = var\n%0:i1 = bswap %x\ninfer %0",
		"%x:i8 = var\n%0:i8 = zext %x\ninfer %0",
		"\x00\x01\x02", "====", "infer infer infer",
		"%x:i8 = var\ninfer %x extra",
		"%x:i8 = var\n%0:i8 = add %x, 99999999999999999999:i8\ninfer %0",
	}
	valid := "%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1"
	for cut := 0; cut < len(valid); cut += 3 {
		inputs = append(inputs, valid[:cut], valid[cut:])
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}

// TestPrintAvoidsVarNameCollision: numeric variable names must not clash
// with the printer's instruction numbering — the printed form of every
// function re-parses (reduced findings keep var %0 after the instruction
// once named %0 is gone).
func TestPrintAvoidsVarNameCollision(t *testing.T) {
	srcs := []string{
		"%0:i3 = var\n%1:i3 = srem %0, 3:i3\ninfer %1",
		"%1:i8 = var\n%0:i8 = add %1, 1:i8\n%2:i8 = mul %0, %0\ninfer %2",
	}
	for _, src := range srcs {
		f := MustParse(src)
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n%s", err, f.String())
		}
		if g.String() != f.String() {
			t.Fatalf("print not a fixpoint:\n%s\nvs\n%s", f.String(), g.String())
		}
	}
}
