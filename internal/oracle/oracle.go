// Package oracle implements the paper's contribution: solver-based
// algorithms that compute sound and maximally precise dataflow facts for
// every analysis under test (§3.3). Each algorithm is engine-agnostic: it
// can run over the SAT-backed engine (production) or the enumeration
// engine (testing), both of which quantify over well-defined inputs only.
//
//   - KnownBits is Algorithm 1: two validity queries per output bit. Its
//     maximal precision follows from the separability of the known-bits
//     lattice (§3.3.1, Figure 2).
//   - DemandedBits is Algorithm 2: two equivalence queries per input bit.
//   - IntegerRange is Algorithm 3: binary search on the range size with a
//     CEGIS loop synthesizing the base (synthesizeBase).
//   - SignBits tries each count from most precise downward (§3.3).
//   - The single-bit analyses are one validity query each (§3.3).
//
// Whenever the engine exhausts its budget, the algorithms degrade soundly:
// the affected bit stays unknown, the range widens, the predicate stays
// unproven — and the result is flagged Exhausted, which the comparator
// reports as Table 1's "resource exhaustion" column.
package oracle

import (
	"math/bits"

	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/solver"
	"dfcheck/internal/trace"
)

// iterSpan opens a KindIter span under the engine's current trace span and
// re-roots the engine at it, so the queries the iteration issues nest
// beneath it in the trace. The returned func restores the parent span and
// ends the iteration span; on the untraced path both are free.
func iterSpan(e solver.Engine, name string) (*trace.Span, func()) {
	parent := e.TraceSpan()
	sp := parent.Child(trace.KindIter, name)
	if sp == nil {
		return nil, func() {}
	}
	e.SetTraceSpan(sp)
	return sp, func() {
		e.SetTraceSpan(parent)
		sp.End()
	}
}

// Outcome carries the quantifier context shared by all results.
type Outcome struct {
	// Feasible is false when no well-defined input exists (dead code);
	// every fact is then vacuously the bottom element.
	Feasible bool
	// Exhausted is true when at least one solver query ran out of
	// budget, in which case the result is sound but possibly imprecise.
	Exhausted bool
}

// MaxRangeTries caps the CEGIS iterations per synthesizeBase call,
// mirroring the artifact's -souper-range-max-tries flag. Proving that NO
// window of size C exists requires on the order of 2^w/(2^w-C) spread
// counterexamples, so sizes whose complement is tiny relative to the
// space are declared exhausted up front rather than ground out (the
// paper's §3.3 makes the same concession: maximal precision is contingent
// on every query completing, and Table 1 reports 42.9% resource
// exhaustion for integer ranges).
const MaxRangeTries = 1000

// KnownBitsResult is a maximally precise known-bits fact.
type KnownBitsResult struct {
	Outcome
	Bits knownbits.Bits
}

// KnownBits runs Algorithm 1.
func KnownBits(e solver.Engine, f *ir.Function) KnownBitsResult {
	return KnownBitsSeeded(e, f, Seed{})
}

// KnownBitsSeeded runs Algorithm 1, skipping both queries for every bit
// the seed already pins: a sound seed-known bit has that value on every
// well-defined input, which is exactly the condition Algorithm 1 tests.
func KnownBitsSeeded(e solver.Engine, f *ir.Function, sd Seed) KnownBitsResult {
	w := f.Width()
	res := KnownBitsResult{Bits: knownbits.Unknown(w)}
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true // unknown: assume live, stay sound
		return res
	}
	res.Feasible = feasible
	if !feasible {
		// Dead code: bottom (every bit claimable; report known zero
		// with a conflict-free convention of all-zero).
		res.Bits = knownbits.FromConst(apint.Zero(w))
		return res
	}
	zero, one := apint.Zero(w), apint.Zero(w)
	for i := uint(0); i < w; i++ {
		if sd.Valid {
			if known, isOne := sd.Known.KnownBit(i); known {
				if isOne {
					one = one.SetBit(i)
					e.AddPruned(2) // canBeOne (true) + canBeZero (false)
				} else {
					zero = zero.SetBit(i)
					e.AddPruned(1) // canBeOne (false)
				}
				continue
			}
		}
		func() {
			sp, end := iterSpan(e, "bit")
			defer end()
			sp.SetInt("bit", int64(i))
			canBeOne, ok := e.OutputBitCanBe(i, true)
			if !ok {
				res.Exhausted = true
				return
			}
			if !canBeOne {
				zero = zero.SetBit(i)
				return
			}
			canBeZero, ok := e.OutputBitCanBe(i, false)
			if !ok {
				res.Exhausted = true
				return
			}
			if !canBeZero {
				one = one.SetBit(i)
			}
		}()
	}
	res.Bits = knownbits.Make(zero, one)
	return res
}

// SignBitsResult is a maximally precise sign-bit count.
type SignBitsResult struct {
	Outcome
	NumSignBits uint
}

// SignBits tries each candidate count from the most precise downward.
func SignBits(e solver.Engine, f *ir.Function) SignBitsResult {
	return SignBitsSeeded(e, f, Seed{})
}

// SignBitsSeeded runs the descending ladder down to the seed's sound
// floor instead of 1: counts at or below the floor hold by seeding, so
// their queries are never posed.
func SignBitsSeeded(e solver.Engine, f *ir.Function, sd Seed) SignBitsResult {
	w := f.Width()
	res := SignBitsResult{NumSignBits: 1}
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true
		return res
	}
	res.Feasible = feasible
	if !feasible {
		res.NumSignBits = w
		return res
	}
	floor := uint(1)
	if sd.Valid && sd.SignBits > floor {
		floor = sd.SignBits
	}
	res.NumSignBits = floor
	for k := w; k > floor; k-- {
		sp, end := iterSpan(e, "ladder")
		sp.SetInt("k", int64(k))
		violated, ok := e.SignBitsViolated(k)
		end()
		if !ok {
			res.Exhausted = true
			continue // a weaker claim may still be provable
		}
		if !violated {
			res.NumSignBits = k
			return res
		}
	}
	if floor >= 2 {
		e.AddPruned(1) // the query at the floor, which would have succeeded
	}
	return res
}

// BoolResult is a maximally precise single-bit fact: Proved means the
// property holds on every well-defined input.
type BoolResult struct {
	Outcome
	Proved bool
}

// boolQuery answers a single-bit property, letting a non-unknown seed
// verdict stand in for the solver query: TriTrue/TriFalse are sound
// claims that coincide with the maximally precise answer (given the
// feasibility established first).
func boolQuery(e solver.Engine, tri Tri, refute func() (bool, bool)) BoolResult {
	var res BoolResult
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true
		return res
	}
	res.Feasible = feasible
	if !feasible {
		res.Proved = true // vacuous
		return res
	}
	if tri != TriUnknown {
		e.AddPruned(1)
		res.Proved = tri == TriTrue
		return res
	}
	violated, ok := refute()
	if !ok {
		res.Exhausted = true
		return res
	}
	res.Proved = !violated
	return res
}

func seedTri(sd Seed, tri Tri) Tri {
	if !sd.Valid {
		return TriUnknown
	}
	return tri
}

// NonZero proves the output is never zero.
func NonZero(e solver.Engine, f *ir.Function) BoolResult {
	return NonZeroSeeded(e, f, Seed{})
}

// NonZeroSeeded is NonZero with seed pruning.
func NonZeroSeeded(e solver.Engine, f *ir.Function, sd Seed) BoolResult {
	return boolQuery(e, seedTri(sd, sd.NonZero), e.CanBeZero)
}

// Negative proves the output's sign bit is always one.
func Negative(e solver.Engine, f *ir.Function) BoolResult {
	return NegativeSeeded(e, f, Seed{})
}

// NegativeSeeded is Negative with seed pruning.
func NegativeSeeded(e solver.Engine, f *ir.Function, sd Seed) BoolResult {
	w := f.Width()
	return boolQuery(e, seedTri(sd, sd.Negative),
		func() (bool, bool) { return e.OutputBitCanBe(w-1, false) })
}

// NonNegative proves the output's sign bit is always zero.
func NonNegative(e solver.Engine, f *ir.Function) BoolResult {
	return NonNegativeSeeded(e, f, Seed{})
}

// NonNegativeSeeded is NonNegative with seed pruning.
func NonNegativeSeeded(e solver.Engine, f *ir.Function, sd Seed) BoolResult {
	w := f.Width()
	return boolQuery(e, seedTri(sd, sd.NonNegative),
		func() (bool, bool) { return e.OutputBitCanBe(w-1, true) })
}

// PowerOfTwo proves the output is always a (non-zero) power of two.
func PowerOfTwo(e solver.Engine, f *ir.Function) BoolResult {
	return PowerOfTwoSeeded(e, f, Seed{})
}

// PowerOfTwoSeeded is PowerOfTwo with seed pruning.
func PowerOfTwoSeeded(e solver.Engine, f *ir.Function, sd Seed) BoolResult {
	return boolQuery(e, seedTri(sd, sd.PowerOfTwo), e.CanBeNonPowerOfTwo)
}

// DemandedBitsResult maps each input variable to its demanded mask (a set
// bit means demanded).
type DemandedBitsResult struct {
	Outcome
	Demanded map[string]apint.Int
}

// DemandedBits runs Algorithm 2.
func DemandedBits(e solver.Engine, f *ir.Function) DemandedBitsResult {
	res := DemandedBitsResult{Demanded: make(map[string]apint.Int, len(f.Vars))}
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true
		for _, v := range f.Vars {
			res.Demanded[v.Name] = apint.AllOnes(v.Width)
		}
		return res
	}
	res.Feasible = feasible
	if !feasible {
		for _, v := range f.Vars {
			res.Demanded[v.Name] = apint.Zero(v.Width) // dead: nothing demanded
		}
		return res
	}
	for _, v := range f.Vars {
		sp, end := iterSpan(e, "var")
		sp.SetStr("var", v.Name)
		mask := apint.Zero(v.Width)
		for i := uint(0); i < v.Width; i++ {
			demanded := false
			for _, val := range []bool{false, true} {
				matters, ok := e.ForcedBitMatters(v, i, val)
				if !ok {
					res.Exhausted = true
					demanded = true // sound fallback
					break
				}
				if matters {
					demanded = true
					break
				}
			}
			if demanded {
				mask = mask.SetBit(i)
			}
		}
		res.Demanded[v.Name] = mask
		end()
	}
	return res
}

// RangeResult is a maximally precise integer range.
type RangeResult struct {
	Outcome
	Range constrange.Range
}

// IntegerRange runs Algorithm 3: binary search for the smallest size C
// such that some base X makes [X, X+C) a sound fact, with synthesizeBase
// finding X by CEGIS. To keep the CEGIS loop convergent on near-full
// ranges, the search is seeded with the exact unsigned and signed hulls
// (each bound found by its own monotone binary search); the CEGIS phase
// then only explores sizes strictly below the better hull, where
// counterexamples spread quickly.
func IntegerRange(e solver.Engine, f *ir.Function) RangeResult {
	return IntegerRangeSeeded(e, f, Seed{})
}

// IntegerRangeSeeded is IntegerRange with seed pruning: a singleton seed
// range short-circuits the whole search (a sound over-approximation with
// one element is exact), and otherwise the four hull searches start from
// the seed's bounds instead of the full word.
func IntegerRangeSeeded(e solver.Engine, f *ir.Function, sd Seed) RangeResult {
	w := f.Width()
	res := RangeResult{Range: constrange.Full(w)}
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true
		return res
	}
	res.Feasible = feasible
	if !feasible {
		res.Range = constrange.Empty(w)
		return res
	}

	if sd.Valid && sd.Range.IsSingle() {
		res.Range = sd.Range
		e.AddPruned(int64(4 * w)) // the four hull binary searches
		return res
	}
	_, endHull := iterSpan(e, "hull-bounds")
	bounds, ok := hullBounds(e, w, sd)
	endHull()
	if !ok {
		res.Exhausted = true
		return res
	}
	one := apint.One(w)
	best := constrange.NonEmpty(bounds.umin, bounds.umax.Add(one))
	if sh := constrange.NonEmpty(bounds.smin, bounds.smax.Add(one)); sh.SizeLT(best) {
		best = sh
	}

	// Algorithm 3 proper, below the hull size.
	samples := []apint.Int{bounds.umin, bounds.umax, bounds.smin, bounds.smax}
	lo := uint64(1)
	var hi uint64
	if n, huge := best.Size(); huge {
		hi = apint.AllOnes(w).Uint64()
	} else {
		hi = n - 1
	}
	for lo <= hi {
		mid := lo + (hi-lo)/2
		csp, endCegis := iterSpan(e, "cegis")
		csp.SetInt("size", int64(mid))
		base, found, exhausted := synthesizeBase(e, w, apint.New(w, mid), &samples)
		endCegis()
		if exhausted {
			res.Exhausted = true
		}
		if found {
			best = constrange.NonEmpty(base, base.Add(apint.New(w, mid)))
			if mid == 1 {
				break
			}
			hi = mid - 1
		} else {
			if mid == apint.AllOnes(w).Uint64() {
				break
			}
			lo = mid + 1
		}
	}
	res.Range = best
	return res
}

// IntegerRangeNaive runs the paper's Algorithm 3 literally: binary search
// over the full size space with CEGIS base synthesis and no hull seeding.
// It exists as the ablation for the hull-seeding design choice: on
// near-full result ranges the naive search must prove "no window of size
// C exists" for C close to 2^w, which needs counterexamples at
// complement-arc granularity and therefore exhausts its budget, while the
// seeded version gets the same range from four cheap bound searches.
func IntegerRangeNaive(e solver.Engine, f *ir.Function) RangeResult {
	w := f.Width()
	res := RangeResult{Range: constrange.Full(w)}
	feasible, ok := e.Feasible()
	if !ok {
		res.Exhausted = true
		res.Feasible = true
		return res
	}
	res.Feasible = feasible
	if !feasible {
		res.Range = constrange.Empty(w)
		return res
	}
	var samples []apint.Int
	lo := uint64(1)
	hi := apint.AllOnes(w).Uint64()
	for lo <= hi {
		mid := lo + (hi-lo)/2
		csp, endCegis := iterSpan(e, "cegis")
		csp.SetInt("size", int64(mid))
		base, found, exhausted := synthesizeBase(e, w, apint.New(w, mid), &samples)
		endCegis()
		if exhausted {
			res.Exhausted = true
		}
		if found {
			res.Range = constrange.NonEmpty(base, base.Add(apint.New(w, mid)))
			if mid == 1 {
				break
			}
			hi = mid - 1
		} else {
			if mid == apint.AllOnes(w).Uint64() {
				break
			}
			lo = mid + 1
		}
	}
	return res
}

type hulls struct {
	umin, umax, smin, smax apint.Int
}

// existsIn asks whether some well-defined output lies in the (possibly
// wrapped) interval [lo, hi); lo == hi denotes the full set.
func existsIn(e solver.Engine, lo, hi apint.Int) (bool, bool) {
	if lo.Eq(hi) {
		return true, true // full interval; the caller checked feasibility
	}
	// out ∈ [lo, hi) ⟺ out ∉ [hi, lo): complement of a circular arc.
	_, found, ok := e.OutputOutside(hi, lo.Sub(hi))
	return found, ok
}

// hullBounds computes the exact unsigned and signed extrema of the
// achievable outputs, each by a monotone binary search. A valid seed
// narrows each search to the seed range's bounds: the seed is a sound
// over-approximation, so the true extremum lies inside them and every
// predicate stays true at its required endpoint.
func hullBounds(e solver.Engine, w uint, sd Seed) (hulls, bool) {
	var h hulls
	maxv := apint.AllOnes(w).Uint64()
	signBit := apint.SignBitValue(w).Uint64()
	one := apint.One(w)

	uLo, uHi := uint64(0), maxv
	sLo, sHi := uint64(0), maxv
	if sd.Valid && !sd.Range.IsEmpty() && !sd.Range.IsFull() {
		uLo = sd.Range.UnsignedMin().Uint64()
		uHi = sd.Range.UnsignedMax().Uint64()
		// The offset map v ↦ v ^ signBit is an unsigned-order embedding
		// of signed order, so the seed's signed bounds map to offset
		// bounds.
		sLo = sd.Range.SignedMin().Uint64() ^ signBit
		sHi = sd.Range.SignedMax().Uint64() ^ signBit
		savedU := int64(bits.Len64(maxv)) - int64(bits.Len64(uHi-uLo))
		savedS := int64(bits.Len64(maxv)) - int64(bits.Len64(sHi-sLo))
		e.AddPruned(2*savedU + 2*savedS) // skipped binary-search steps
	}

	// Smallest unsigned: least m such that ∃ out ∈ [0, m].
	umin, ok := searchLeast(uLo, uHi, func(m uint64) (bool, bool) {
		return existsIn(e, apint.Zero(w), apint.New(w, m).Add(one))
	})
	if !ok {
		return h, false
	}
	// Largest unsigned: greatest m such that ∃ out ∈ [m, MAX].
	umax, ok := searchGreatest(uLo, uHi, func(m uint64) (bool, bool) {
		return existsIn(e, apint.New(w, m), apint.Zero(w))
	})
	if !ok {
		return h, false
	}
	// Signed bounds via the order-preserving offset map v = offset ^ sign.
	sminOff, ok := searchLeast(sLo, sHi, func(off uint64) (bool, bool) {
		s := apint.New(w, off^signBit)
		return existsIn(e, apint.MinSigned(w), s.Add(one))
	})
	if !ok {
		return h, false
	}
	smaxOff, ok := searchGreatest(sLo, sHi, func(off uint64) (bool, bool) {
		s := apint.New(w, off^signBit)
		return existsIn(e, s, apint.MinSigned(w))
	})
	if !ok {
		return h, false
	}
	h.umin = apint.New(w, umin)
	h.umax = apint.New(w, umax)
	h.smin = apint.New(w, sminOff^signBit)
	h.smax = apint.New(w, smaxOff^signBit)
	return h, true
}

// searchLeast finds the least m in [min, max] with pred(m) true; pred
// must be monotone (false then true) on the window and true at max.
func searchLeast(min, max uint64, pred func(uint64) (bool, bool)) (uint64, bool) {
	lo, hi := min, max
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, ok := pred(mid)
		if !ok {
			return 0, false
		}
		if res {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// searchGreatest finds the greatest m in [min, max] with pred(m) true;
// pred must be monotone (true then false) on the window and true at min.
func searchGreatest(min, max uint64, pred func(uint64) (bool, bool)) (uint64, bool) {
	lo, hi := min, max
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		res, ok := pred(mid)
		if !ok {
			return 0, false
		}
		if res {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// synthesizeBase finds X such that every well-defined output lies in
// [X, X+C), by counterexample-guided search: cover the known sample
// outputs with a window of size C (the window may start at any sample),
// then ask the solver to refute; counterexamples enlarge the sample set.
func synthesizeBase(e solver.Engine, w uint, c apint.Int, samples *[]apint.Int) (apint.Int, bool, bool) {
	exhausted := false
	// A failure proof needs counterexamples spread at complement-arc
	// granularity; bail out (exhausted) when that cannot fit the try
	// budget.
	compVal := c.Neg().Uint64() // 2^w - C
	if compVal == 0 {
		compVal = 1
	}
	needed := apint.AllOnes(w).Uint64()/compVal + 1
	if needed > uint64(MaxRangeTries/3) {
		return apint.Int{}, false, true
	}
	tries := int(needed*3 + 16)
	if tries > MaxRangeTries {
		tries = MaxRangeTries
	}
	if len(*samples) == 0 {
		// Seed with any achievable output (the empty interval makes
		// everything "outside").
		ex, found, ok := e.OutputOutside(apint.Zero(w), apint.Zero(w))
		if !ok {
			return apint.Int{}, false, true
		}
		if !found {
			// No achievable output at all; callers handle infeasible
			// before this, so treat as failure.
			return apint.Int{}, false, exhausted
		}
		*samples = append(*samples, ex)
	}
	for try := 0; try < tries; try++ {
		base, coverable := coverWindow(w, c, *samples)
		if !coverable {
			return apint.Int{}, false, exhausted
		}
		// Probe an interior quarter of the complement arc first: a
		// counterexample from there splits the remaining space evenly,
		// which keeps the loop convergent (an adversarial solver model
		// just past the window edge would otherwise shrink progress to
		// one value per iteration).
		compSize := c.Neg() // 2^w - C
		third := compSize.LShr(2)
		if !third.IsZero() {
			m1 := base.Add(c).Add(third)
			m2 := m1.Add(third)
			if ex, found, ok := e.OutputOutside(m2, m1.Sub(m2)); ok && found {
				*samples = append(*samples, ex)
				continue
			} else if !ok {
				exhausted = true
			}
		}
		ex, found, ok := e.OutputOutside(base, c)
		if !ok {
			return apint.Int{}, false, true
		}
		if !found {
			return base, true, exhausted
		}
		*samples = append(*samples, ex)
	}
	return apint.Int{}, false, true // CEGIS budget exhausted
}

// coverWindow finds a window [X, X+C) covering all samples, if one exists.
// A minimal covering window can always start at a sample, so only sample
// values are candidate bases.
func coverWindow(w uint, c apint.Int, samples []apint.Int) (apint.Int, bool) {
	for _, base := range samples {
		covered := true
		for _, s := range samples {
			// s ∈ [base, base+c) ⟺ s - base <u c.
			if !s.Sub(base).ULT(c) {
				covered = false
				break
			}
		}
		if covered {
			return base, true
		}
	}
	return apint.Int{}, false
}

// All bundles every oracle fact for one function, computed with a shared
// engine budget — the facts the paper's tool infers per Souper expression.
type All struct {
	Known       KnownBitsResult
	Sign        SignBitsResult
	NonZero     BoolResult
	Negative    BoolResult
	NonNegative BoolResult
	PowerOfTwo  BoolResult
	Range       RangeResult
	Demanded    DemandedBitsResult
}

// AnalyzeAll computes every fact on ONE shared engine with the given
// total conflict budget for the whole expression (0 selects the default),
// seeded from the trusted sound analyzer. Earlier versions created eight
// independent engines, each with its own budget and its own cold
// bit-blast of the same function; sharing fixes both leaks.
func AnalyzeAll(f *ir.Function, budget int64) All {
	return AnalyzeAllWith(solver.NewSAT(f, budget), f, ComputeSeed(f))
}

// AnalyzeAllWith computes every fact on the given engine. Known bits run
// first so their exact result can enrich the seed for the analyses that
// follow; DemandedBits runs unseeded (its facts are about inputs, which
// the seed does not cover).
func AnalyzeAllWith(e solver.Engine, f *ir.Function, sd Seed) All {
	var a All
	a.Known = KnownBitsSeeded(e, f, sd)
	if a.Known.Feasible {
		sd.EnrichFromKnown(a.Known.Bits, !a.Known.Exhausted)
	}
	a.Sign = SignBitsSeeded(e, f, sd)
	a.NonZero = NonZeroSeeded(e, f, sd)
	a.Negative = NegativeSeeded(e, f, sd)
	a.NonNegative = NonNegativeSeeded(e, f, sd)
	a.PowerOfTwo = PowerOfTwoSeeded(e, f, sd)
	a.Range = IntegerRangeSeeded(e, f, sd)
	a.Demanded = DemandedBits(e, f)
	return a
}
