package oracle

import (
	"dfcheck/internal/apint"
	"dfcheck/internal/constrange"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
)

// This file implements sound-fact seeding: before paying for SAT queries,
// the oracle runs the trusted sound transfer functions and uses their
// facts to answer or narrow its own searches. Because every seed claim is
// sound — it holds for ALL well-defined inputs — and the oracle computes
// the maximally precise fact, a seed-decided answer is exactly what the
// solver would have returned, so pruning never changes a result, only the
// number of queries (counted in Stats.Pruned).
//
// The seed always comes from the fixed modern analyzer
// (llvmport.Analyzer{Modern: true} with no Bugs), NEVER from the analyzer
// under test: seeding from a possibly bug-injected comparator analyzer
// would let the bug corrupt the oracle and mask its own detection (§4.7).
// The -no-seed ablation turns seeding off entirely, restoring the pure
// solver-only oracle for cross-checking.

// Tri is a three-valued seed verdict for a single-bit property.
type Tri uint8

const (
	// TriUnknown means the seed decides nothing; ask the solver.
	TriUnknown Tri = iota
	// TriTrue means the property is proved for all well-defined inputs.
	TriTrue
	// TriFalse means the property is refuted: some well-defined input
	// violates it (valid only given feasibility, which the seeded
	// algorithms establish first).
	TriFalse
)

// Seed carries sound facts used to prune oracle queries. The zero value
// (Valid == false) seeds nothing.
type Seed struct {
	// Valid gates the whole seed; false disables seeding (the -no-seed
	// ablation path).
	Valid bool

	// Known holds sound known bits: every well-defined output matches
	// them. Seed-known bits need no Algorithm 1 queries.
	Known knownbits.Bits
	// SignBits is a sound lower bound on the output's replicated sign
	// bits: the descending ladder stops here instead of at 1.
	SignBits uint
	// Range is a sound over-approximation of the achievable outputs: the
	// hull binary searches run inside it instead of the full word.
	Range constrange.Range

	NonZero     Tri
	Negative    Tri
	NonNegative Tri
	PowerOfTwo  Tri

	// Exact marks Known as a maximally precise oracle result rather than
	// a static over-approximation. Only then may the absence of a known
	// bit refute a property (e.g. sign bit not known one ⟹ Negative is
	// false): in a static seed an unknown bit means "don't know", in an
	// exact one it means "both values achievable".
	Exact bool
}

// ComputeSeed runs the trusted sound analyzer over f and packages its
// facts as a (non-exact) seed.
func ComputeSeed(f *ir.Function) Seed {
	an := &llvmport.Analyzer{Modern: true}
	fa := an.Analyze(f)
	sd := Seed{
		Valid:    true,
		Known:    fa.KnownBits(),
		SignBits: fa.NumSignBits(),
		Range:    fa.Range(),
	}
	if fa.NonZero() {
		sd.NonZero = TriTrue
	}
	if fa.Negative() {
		sd.Negative = TriTrue
	}
	if fa.NonNegative() {
		sd.NonNegative = TriTrue
	}
	if fa.PowerOfTwo() {
		sd.PowerOfTwo = TriTrue
	}
	sd.deriveFromKnown()
	return sd
}

// EnrichFromKnown folds an oracle-computed known-bits result back into the
// seed, so the analyses that run after Algorithm 1 benefit from it. exact
// must be true only when the result is maximally precise (feasible and not
// exhausted); it unlocks the refutation direction.
func (sd *Seed) EnrichFromKnown(k knownbits.Bits, exact bool) {
	if !sd.Valid {
		return
	}
	sd.Known = sd.Known.Meet(k)
	sd.Exact = sd.Exact || exact
	sd.deriveFromKnown()
}

// deriveFromKnown refreshes the derived fields from sd.Known. Proof-
// direction conclusions need only soundness; refutation-direction ones
// need Exact (see the field comment).
func (sd *Seed) deriveFromKnown() {
	k := sd.Known
	if sb := signBitsFromKnown(k); sb > sd.SignBits {
		sd.SignBits = sb
	}
	if !k.HasConflict() {
		// Known bits bound the output unsigned: fold their hull into the
		// range seed (UMin == 0 ∧ UMax == max yields the full set, a
		// no-op under intersection).
		hull := constrange.NonEmpty(k.UMin(), k.UMax().Add(apint.One(k.Width())))
		sd.Range = sd.Range.Intersect(hull)
	}
	if !k.UMin().IsZero() {
		sd.NonZero = TriTrue // some bit is known one
	}
	if k.IsNegative() {
		sd.Negative = TriTrue
	} else if sd.Exact {
		// Exact and sign bit not known one: some well-defined output is
		// non-negative.
		sd.Negative = TriFalse
	}
	if k.IsNonNegative() {
		sd.NonNegative = TriTrue
	} else if sd.Exact {
		sd.NonNegative = TriFalse
	}
	if k.One.PopCount() >= 2 {
		// Every output has at least two set bits: never a power of two.
		sd.PowerOfTwo = TriFalse
	}
}

// signBitsFromKnown is the sound sign-bit floor implied by known bits:
// L known leading ones (or zeros) pin the top L bits equal.
func signBitsFromKnown(k knownbits.Bits) uint {
	sb := k.CountMinLeadingZeros()
	if o := k.CountMinLeadingOnes(); o > sb {
		sb = o
	}
	if sb == 0 {
		sb = 1
	}
	return sb
}
