package oracle

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/solver"
)

// bruteFacts computes ground-truth maximally precise facts by enumerating
// every well-defined input.
type bruteFacts struct {
	feasible bool
	known    knownbits.Bits
	sign     uint
	nonZero  bool
	neg      bool
	nonNeg   bool
	pow2     bool
	// achievable outputs, for range checks
	outputs map[uint64]bool
}

func brute(t *testing.T, f *ir.Function) bruteFacts {
	t.Helper()
	w := f.Width()
	bf := bruteFacts{
		known:   knownbits.FromConst(apint.Zero(w)),
		sign:    w,
		nonZero: true, neg: true, nonNeg: true, pow2: true,
		outputs: make(map[uint64]bool),
	}
	first := true
	var zero, one apint.Int
	eval.ForEachInput(f, func(env eval.Env) bool {
		v, ok := eval.Eval(f, env)
		if !ok {
			return true
		}
		bf.feasible = true
		bf.outputs[v.Uint64()] = true
		if first {
			zero, one = v.Not(), v
			first = false
		} else {
			zero, one = zero.And(v.Not()), one.And(v)
		}
		if s := v.NumSignBits(); s < bf.sign {
			bf.sign = s
		}
		if v.IsZero() {
			bf.nonZero = false
		}
		if !v.IsNegative() {
			bf.neg = false
		}
		if v.IsNegative() {
			bf.nonNeg = false
		}
		if !v.IsPowerOfTwo() {
			bf.pow2 = false
		}
		return true
	})
	if bf.feasible {
		bf.known = knownbits.Make(zero, one)
	} else {
		bf.sign = w
	}
	return bf
}

// minimalRangeSize computes the smallest circular window covering all
// achievable outputs.
func minimalRangeSize(w uint, outputs map[uint64]bool) uint64 {
	if len(outputs) == 0 {
		return 0
	}
	total := uint64(1) << w
	if w == 64 {
		panic("minimalRangeSize: width too large for test")
	}
	// Largest circular gap between consecutive achievable values.
	var vals []uint64
	for v := range outputs {
		vals = append(vals, v)
	}
	// insertion sort (small sets)
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	maxGap := uint64(0)
	for i := 0; i < len(vals); i++ {
		next := vals[(i+1)%len(vals)]
		gap := (next - vals[i] - 1 + total) % total
		if len(vals) == 1 {
			gap = total - 1
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	return total - maxGap
}

var oracleCorpus = []string{
	"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0",
	"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1",
	"%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1",
	"%x:i6 = var\n%0:i6 = mulnsw 10:i6, %x\n%1:i6 = srem %0, 10:i6\ninfer %1",
	"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i8 = srem %x, 8:i8\ninfer %0",
	"%x:i8 = var\n%0:i8 = srem 4:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i8 = udiv 128:i8, %x\ninfer %0",
	"%x:i8 = var (range=[1,7))\n%0:i8 = and 255:i8, %x\ninfer %0",
	"%x:i8 = var\n%0:i1 = eq 0:i8, %x\n%1:i8 = select %0, 1:i8, %x\ninfer %1",
	"%x:i8 = var (range=[1,0))\n%0:i8 = sub 0:i8, %x\n%1:i8 = and %x, %0\ninfer %1",
	"%x:i8 = var (range=[1,3))\ninfer %x",
	"%x:i8 = var\n%0:i8 = udiv %x, 0:i8\ninfer %0", // dead
	"%x:i5 = var\n%y:i5 = var\n%0:i1 = ult %x, %y\n%1:i5 = select %0, %x, %y\ninfer %1",
	"%x:i8 = var\n%0:i8 = ashr %x, 5:i8\ninfer %0",
	"%x:i8 = var (range=[-7,8))\ninfer %x",
	"%x:i8 = var\n%0:i8 = and 7:i8, %x\n%1:i8 = shl 1:i8, %0\ninfer %1",
	"%x:i8 = var\n%0:i8 = urem %x, 10:i8\n%1:i8 = add 100:i8, %0\ninfer %1",
	"%x:i8 = var\n%y:i8 = var\n%0:i8 = umin %x, %y\n%1:i8 = umax %x, %y\n%2:i8 = sub %1, %0\ninfer %2",
	"%x:i8 = var (range=[-10,11))\n%0:i8 = abs %x\ninfer %0",
	"%a:i4 = var\n%b:i4 = var\n%s:i4 = var\n%0:i4 = fshl %a, %b, %s\ninfer %0",
	"%x:i8 = var (range=[0,100))\n%y:i8 = var (range=[0,100))\n%0:i1 = uaddo %x, %y\ninfer %0",
	"%x:i8 = var (range=[200,256))\n%y:i8 = var (range=[100,150))\n%0:i1 = uaddo %x, %y\ninfer %0",
}

func TestOracleMatchesBruteForce(t *testing.T) {
	for _, src := range oracleCorpus {
		f := ir.MustParse(src)
		bf := brute(t, f)

		kb := KnownBits(solver.NewSAT(f, 0), f)
		if kb.Exhausted {
			t.Fatalf("%s: known bits exhausted", src)
		}
		if kb.Feasible != bf.feasible {
			t.Fatalf("%s: feasible = %v, want %v", src, kb.Feasible, bf.feasible)
		}
		if bf.feasible && !kb.Bits.Eq(bf.known) {
			t.Errorf("%s: oracle known bits %s, brute force %s", src, kb.Bits, bf.known)
		}

		sb := SignBits(solver.NewSAT(f, 0), f)
		if bf.feasible && sb.NumSignBits != bf.sign {
			t.Errorf("%s: oracle sign bits %d, brute force %d", src, sb.NumSignBits, bf.sign)
		}

		nz := NonZero(solver.NewSAT(f, 0), f)
		if bf.feasible && nz.Proved != bf.nonZero {
			t.Errorf("%s: oracle non-zero %v, brute force %v", src, nz.Proved, bf.nonZero)
		}
		ng := Negative(solver.NewSAT(f, 0), f)
		if bf.feasible && ng.Proved != bf.neg {
			t.Errorf("%s: oracle negative %v, brute force %v", src, ng.Proved, bf.neg)
		}
		nn := NonNegative(solver.NewSAT(f, 0), f)
		if bf.feasible && nn.Proved != bf.nonNeg {
			t.Errorf("%s: oracle non-negative %v, brute force %v", src, nn.Proved, bf.nonNeg)
		}
		p2 := PowerOfTwo(solver.NewSAT(f, 0), f)
		if bf.feasible && p2.Proved != bf.pow2 {
			t.Errorf("%s: oracle power-of-two %v, brute force %v", src, p2.Proved, bf.pow2)
		}

		rg := IntegerRange(solver.NewSAT(f, 0), f)
		if bf.feasible {
			if rg.Exhausted {
				t.Fatalf("%s: range exhausted", src)
			}
			// Sound: contains every achievable output.
			for v := range bf.outputs {
				if !rg.Range.Contains(apint.New(f.Width(), v)) {
					t.Errorf("%s: oracle range %v misses output %d", src, rg.Range, v)
				}
			}
			// Maximally precise: matches the smallest covering window.
			wantSize := minimalRangeSize(f.Width(), bf.outputs)
			gotSize, huge := rg.Range.Size()
			if huge {
				t.Fatalf("%s: unexpected huge range", src)
			}
			if gotSize != wantSize {
				t.Errorf("%s: oracle range %v has size %d, optimal %d", src, rg.Range, gotSize, wantSize)
			}
		} else if !rg.Range.IsEmpty() {
			t.Errorf("%s: dead code range = %v, want empty", src, rg.Range)
		}
	}
}

func TestOracleSATAgreesWithEnum(t *testing.T) {
	for _, src := range oracleCorpus {
		f := ir.MustParse(src)
		if eval.TotalInputBits(f) > 12 {
			continue
		}
		se := func() solver.Engine { return solver.NewSAT(f, 0) }
		ee := func() solver.Engine { return solver.NewEnum(f) }

		if a, b := KnownBits(se(), f), KnownBits(ee(), f); !a.Bits.Eq(b.Bits) {
			t.Errorf("%s: known bits differ sat=%v enum=%v", src, a.Bits, b.Bits)
		}
		if a, b := SignBits(se(), f), SignBits(ee(), f); a.NumSignBits != b.NumSignBits {
			t.Errorf("%s: sign bits differ sat=%d enum=%d", src, a.NumSignBits, b.NumSignBits)
		}
		if a, b := IntegerRange(se(), f), IntegerRange(ee(), f); !a.Range.Eq(b.Range) {
			t.Errorf("%s: range differs sat=%v enum=%v", src, a.Range, b.Range)
		}
		da, db := DemandedBits(se(), f), DemandedBits(ee(), f)
		for _, v := range f.Vars {
			if da.Demanded[v.Name].Ne(db.Demanded[v.Name]) {
				t.Errorf("%s: demanded %%%s differ sat=%s enum=%s", src, v.Name,
					da.Demanded[v.Name].BitString(), db.Demanded[v.Name].BitString())
			}
		}
	}
}

// --- The paper's precise results (§4.2–4.5), at the paper's widths ---

func TestPaperPreciseKnownBits(t *testing.T) {
	cases := []struct{ src, want string }{
		{"%x:i8 = var\n%0:i8 = shl 32:i8, %x\ninfer %0", "xxx00000"},
		{"%x:i4 = var\n%y:i8 = var\n%0:i8 = zext %x\n%1:i8 = lshr %0, %y\ninfer %1", "0000xxxx"},
		{"%x:i8 = var\n%0:i8 = and 1:i8, %x\n%1:i8 = add %x, %0\ninfer %1", "xxxxxxx0"},
		{"%x:i8 = var\n%0:i8 = mulnsw 10:i8, %x\n%1:i8 = srem %0, 10:i8\ninfer %1", "00000000"},
		{"%x:i8 = var (range=[0,5))\n%0:i8 = add 1:i8, %x\ninfer %0", "00000xxx"},
		{"%0:i8 = var\n%1:i8 = srem 4:i8, %0\ninfer %1", "00000x0x"},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		got := KnownBits(solver.NewSAT(f, 0), f)
		if got.Exhausted {
			t.Fatalf("%s: exhausted", c.src)
		}
		if got.Bits.String() != c.want {
			t.Errorf("%s: precise known bits = %s, want %s (paper)", c.src, got.Bits, c.want)
		}
	}
}

func TestPaperPrecisePowerOfTwo(t *testing.T) {
	cases := []string{
		"%x:i32 = var (range=[1,3))\ninfer %x",
		"%x:i16 = var (range=[1,0))\n%0:i16 = sub 0:i16, %x\n%1:i16 = and %x, %0\ninfer %1",
		"%x:i32 = var\n%0:i32 = and 7:i32, %x\n%1:i32 = shl 1:i32, %0\n%2:i8 = trunc %1\ninfer %2",
	}
	for _, src := range cases {
		f := ir.MustParse(src)
		got := PowerOfTwo(solver.NewSAT(f, 0), f)
		if got.Exhausted {
			t.Fatalf("%s: exhausted", src)
		}
		if !got.Proved {
			t.Errorf("%s: oracle should prove power of two (paper §4.3)", src)
		}
	}
}

func TestPaperPreciseDemandedBits(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i1 = slt %x, 0:i8\ninfer %0")
	got := DemandedBits(solver.NewSAT(f, 0), f)
	if s := got.Demanded["x"].BitString(); s != "10000000" {
		t.Errorf("icmp slt demanded = %s, want 10000000 (paper §4.4)", s)
	}

	f2 := ir.MustParse("%x:i16 = var\n%0:i16 = udiv %x, 1000:i16\ninfer %0")
	got2 := DemandedBits(solver.NewSAT(f2, 0), f2)
	if s := got2.Demanded["x"].BitString(); s != "1111111111111000" {
		t.Errorf("udiv 1000 demanded = %s, want 1111111111111000 (paper §4.4)", s)
	}
}

func TestPaperPreciseRanges(t *testing.T) {
	cases := []struct{ src, want string }{
		{"%x:i32 = var\n%0:i1 = eq 0:i32, %x\n%1:i32 = select %0, 1:i32, %x\ninfer %1", "[1,0)"},
		{"%x:i32 = var (range=[1,7))\n%0:i32 = and 4294967295:i32, %x\ninfer %0", "[1,7)"},
		{"%x:i32 = var\n%0:i32 = srem %x, 8:i32\ninfer %0", "[-7,8)"},
		{"%x:i16 = var\n%0:i16 = udiv 128:i16, %x\ninfer %0", "[0,129)"},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		got := IntegerRange(solver.NewSAT(f, 0), f)
		// At 32 bits, proving that no range below the hull exists can
		// legitimately exhaust the synthesis budget (the paper reports
		// 42.9% resource exhaustion for this analysis); the returned
		// range must still be the paper's maximally precise one.
		if got.Range.String() != c.want {
			t.Errorf("%s: precise range = %v, want %s (paper §4.5)", c.src, got.Range, c.want)
		}
	}
}

func TestPaperSoundnessBugSignBits(t *testing.T) {
	// §4.7 bug 2's trigger: srem %0, 3 at i32 has exactly 30 sign bits.
	f := ir.MustParse("%0:i32 = var\n%1:i32 = srem %0, 3:i32\ninfer %1")
	got := SignBits(solver.NewSAT(f, 0), f)
	if got.Exhausted {
		t.Fatal("exhausted")
	}
	if got.NumSignBits != 30 {
		t.Errorf("precise sign bits = %d, want 30 (paper §4.7)", got.NumSignBits)
	}
}

func TestDeadCodeFacts(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv %x, 0:i8\ninfer %0")
	e := solver.NewSAT(f, 0)
	kb := KnownBits(e, f)
	if kb.Feasible {
		t.Error("dead code reported feasible")
	}
	d := DemandedBits(solver.NewSAT(f, 0), f)
	if !d.Demanded["x"].IsZero() {
		t.Errorf("dead code demanded = %s, want none", d.Demanded["x"].BitString())
	}
	sb := SignBits(solver.NewSAT(f, 0), f)
	if sb.NumSignBits != 8 {
		t.Errorf("dead code sign bits = %d, want width", sb.NumSignBits)
	}
}

func TestAnalyzeAll(t *testing.T) {
	f := ir.MustParse("%x:i8 = var (range=[1,3))\ninfer %x")
	all := AnalyzeAll(f, 0)
	if !all.NonZero.Proved || !all.PowerOfTwo.Proved || !all.NonNegative.Proved || all.Negative.Proved {
		t.Error("AnalyzeAll single-bit facts wrong")
	}
	if all.Range.Range.String() != "[1,3)" {
		t.Errorf("AnalyzeAll range = %v", all.Range.Range)
	}
	if all.Known.Bits.String() != "000000xx" {
		t.Errorf("AnalyzeAll known = %v", all.Known.Bits)
	}
	if all.Sign.NumSignBits != 6 {
		t.Errorf("AnalyzeAll sign bits = %d", all.Sign.NumSignBits)
	}
	// Forcing any bit of a [1,3)-constrained variable pushes it outside
	// its range metadata, so under UB-aware quantification no bit is
	// demanded (there is no well-defined pair of executions that differ).
	if d := all.Demanded.Demanded["x"]; !d.IsZero() {
		t.Errorf("AnalyzeAll demanded = %s, want none", d.BitString())
	}
}

func TestAblationNaiveAlgorithm3(t *testing.T) {
	// On small, well-bounded results the naive Algorithm 3 and the
	// hull-seeded version agree exactly.
	for _, src := range []string{
		"%x:i8 = var\n%0:i8 = srem %x, 8:i8\ninfer %0",
		"%x:i8 = var\n%0:i8 = udiv 128:i8, %x\ninfer %0",
		"%x:i8 = var (range=[1,7))\n%0:i8 = and 255:i8, %x\ninfer %0",
	} {
		f := ir.MustParse(src)
		seeded := IntegerRange(solver.NewSAT(f, 0), f)
		naive := IntegerRangeNaive(solver.NewSAT(f, 0), f)
		if naive.Exhausted {
			t.Errorf("%s: naive exhausted unexpectedly", src)
			continue
		}
		if !seeded.Range.Eq(naive.Range) {
			t.Errorf("%s: seeded %v != naive %v", src, seeded.Range, naive.Range)
		}
	}

	// On a near-full result (all values but zero) the naive algorithm
	// exhausts — that is the design reason for hull seeding.
	f := ir.MustParse("%x:i16 = var\n%0:i1 = eq 0:i16, %x\n%1:i16 = select %0, 1:i16, %x\ninfer %1")
	seeded := IntegerRange(solver.NewSAT(f, 0), f)
	if seeded.Range.String() != "[1,0)" {
		t.Errorf("seeded range = %v, want [1,0)", seeded.Range)
	}
	naive := IntegerRangeNaive(solver.NewSAT(f, 0), f)
	if !naive.Exhausted {
		t.Logf("naive unexpectedly completed with %v (solver got lucky)", naive.Range)
	}
	// Naive must still be sound: its range contains all non-zero values.
	for _, v := range []uint64{1, 2, 0x8000, 0xFFFF} {
		if !naive.Range.Contains(apint.New(16, v)) {
			t.Errorf("naive range %v excludes achievable %d", naive.Range, v)
		}
	}
}

func TestExhaustionDegradesSoundly(t *testing.T) {
	// A hard 32-bit multiply with a tiny budget must come back sound
	// (unknown bits) and flagged Exhausted, not wrong.
	f := ir.MustParse("%x:i32 = var\n%y:i32 = var\n%0:i32 = mul %x, %y\n%1:i32 = mul %0, %0\ninfer %1")
	got := KnownBits(solver.NewSAT(f, 5), f)
	if !got.Exhausted {
		t.Error("expected exhaustion with budget 5")
	}
	// Whatever bits were resolved must be sound; spot check on inputs.
	if got.Bits.HasConflict() {
		t.Errorf("exhausted result has conflict: %v", got.Bits)
	}
}

// TestOracle64BitDivisionFree backs the EXPERIMENTS claim that division-
// free queries complete at the full 64-bit width the paper uses.
func TestOracle64BitDivisionFree(t *testing.T) {
	cases := []struct {
		src       string
		wantKnown string // empty = don't check exact bits
	}{
		{"%x:i64 = var\n%0:i64 = shl 32:i64, %x\ninfer %0", ""},
		{"%x:i64 = var\n%0:i64 = and 255:i64, %x\n%1:i64 = mul %0, 256:i64\ninfer %1", ""},
		{"%x:i64 = var (range=[1,0))\n%0:i64 = sub 0:i64, %x\n%1:i64 = and %x, %0\ninfer %1", ""},
	}
	for _, c := range cases {
		f := ir.MustParse(c.src)
		kb := KnownBits(solver.NewSAT(f, 0), f)
		if kb.Exhausted {
			t.Errorf("%s: 64-bit known bits exhausted", c.src)
		}
		sb := SignBits(solver.NewSAT(f, 0), f)
		if sb.Exhausted {
			t.Errorf("%s: 64-bit sign bits exhausted", c.src)
		}
	}
	// The x & -x power-of-two proof at i64, §4.3's own width.
	f := ir.MustParse("%x:i64 = var (range=[1,0))\n%0:i64 = sub 0:i64, %x\n%1:i64 = and %x, %0\ninfer %1")
	p2 := PowerOfTwo(solver.NewSAT(f, 0), f)
	if p2.Exhausted || !p2.Proved {
		t.Errorf("x & -x at i64: proved=%v exhausted=%v, want proved", p2.Proved, p2.Exhausted)
	}
	// shl 32, %x at i64: 5 trailing zeros known, as at i8.
	f2 := ir.MustParse("%x:i64 = var\n%0:i64 = shl 32:i64, %x\ninfer %0")
	kb := KnownBits(solver.NewSAT(f2, 0), f2)
	if kb.Exhausted {
		t.Fatal("exhausted")
	}
	for i := uint(0); i < 5; i++ {
		if known, one := kb.Bits.KnownBit(i); !known || one {
			t.Errorf("bit %d of shl 32, %%x at i64 should be known zero", i)
		}
	}
}
