package oracle

import (
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/eval"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/solver"
)

func seedTestCorpus(seed int64, n int) []harvest.Expr {
	return harvest.Generate(harvest.Config{
		Seed:     seed,
		NumExprs: n,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 4, Weight: 2}, {Width: 8, Weight: 1}},
	})
}

// TestSeedSoundOnBruteForce verifies the seed's soundness contract against
// exhaustive enumeration: every claim must hold on every well-defined
// input (TriTrue claims universally, TriFalse claims existentially).
func TestSeedSoundOnBruteForce(t *testing.T) {
	for _, e := range seedTestCorpus(41, 60) {
		if eval.TotalInputBits(e.F) > 12 {
			continue
		}
		sd := ComputeSeed(e.F)
		if !sd.Valid {
			continue
		}
		var (
			feasible                   bool
			sawZero, sawNeg, sawNonNeg bool
			sawNonPow2                 bool
			minSign                    = e.F.Width()
		)
		eval.ForEachInput(e.F, func(env eval.Env) bool {
			v, ok := eval.Eval(e.F, env)
			if !ok {
				return true
			}
			feasible = true
			if !sd.Known.Contains(v) {
				t.Fatalf("%s: seed known bits %v exclude achievable output %v\n%s", e.Name, sd.Known, v, e.F)
			}
			if got := v.NumSignBits(); got < sd.SignBits {
				t.Fatalf("%s: seed claims %d sign bits, output %v has %d\n%s", e.Name, sd.SignBits, v, got, e.F)
			}
			if got := v.NumSignBits(); got < minSign {
				minSign = got
			}
			if !sd.Range.Contains(v) {
				t.Fatalf("%s: seed range %v excludes achievable output %v\n%s", e.Name, sd.Range, v, e.F)
			}
			if sd.NonZero == TriTrue && v.IsZero() {
				t.Fatalf("%s: seed claims non-zero, output 0 achievable\n%s", e.Name, e.F)
			}
			if sd.Negative == TriTrue && !v.IsNegative() {
				t.Fatalf("%s: seed claims negative, output %v achievable\n%s", e.Name, v, e.F)
			}
			if sd.NonNegative == TriTrue && v.IsNegative() {
				t.Fatalf("%s: seed claims non-negative, output %v achievable\n%s", e.Name, v, e.F)
			}
			if sd.PowerOfTwo == TriTrue && !v.IsPowerOfTwo() {
				t.Fatalf("%s: seed claims power-of-two, output %v achievable\n%s", e.Name, v, e.F)
			}
			if v.IsZero() {
				sawZero = true
			}
			if v.IsNegative() {
				sawNeg = true
			} else {
				sawNonNeg = true
			}
			if !v.IsPowerOfTwo() {
				sawNonPow2 = true
			}
			return true
		})
		if !feasible {
			continue // claims are vacuous on dead code
		}
		// TriFalse refutations claim a counterexample exists.
		if sd.NonZero == TriFalse && !sawZero {
			t.Errorf("%s: seed refutes non-zero but 0 is not achievable\n%s", e.Name, e.F)
		}
		if sd.Negative == TriFalse && !sawNonNeg {
			t.Errorf("%s: seed refutes negative but no non-negative output exists\n%s", e.Name, e.F)
		}
		if sd.NonNegative == TriFalse && !sawNeg {
			t.Errorf("%s: seed refutes non-negative but no negative output exists\n%s", e.Name, e.F)
		}
		if sd.PowerOfTwo == TriFalse && !sawNonPow2 {
			t.Errorf("%s: seed refutes power-of-two but every output is one\n%s", e.Name, e.F)
		}
		_ = minSign
	}
}

// TestSeededMatchesUnseeded is the central no-behaviour-change property of
// seeding: on random DAGs, the fully seeded oracle run (shared engine,
// enum fast path enabled) must produce exactly the facts of the unseeded
// run on a plain SAT engine. Seeding and the fast paths may only skip
// work, never change an answer.
func TestSeededMatchesUnseeded(t *testing.T) {
	for _, e := range seedTestCorpus(42, 50) {
		seeded := AnalyzeAllWith(solver.NewEngine(e.F, solver.Config{}), e.F, ComputeSeed(e.F))
		plain := AnalyzeAllWith(solver.NewSAT(e.F, 0), e.F, Seed{})

		if seeded.Known.Exhausted || plain.Known.Exhausted {
			continue // exhaustion makes precision incomparable
		}
		if !seeded.Known.Bits.Eq(plain.Known.Bits) || seeded.Known.Feasible != plain.Known.Feasible {
			t.Errorf("%s: known bits differ: seeded %v, unseeded %v\n%s", e.Name, seeded.Known.Bits, plain.Known.Bits, e.F)
		}
		if seeded.Sign.NumSignBits != plain.Sign.NumSignBits {
			t.Errorf("%s: sign bits differ: seeded %d, unseeded %d\n%s", e.Name, seeded.Sign.NumSignBits, plain.Sign.NumSignBits, e.F)
		}
		if seeded.NonZero.Proved != plain.NonZero.Proved {
			t.Errorf("%s: non-zero differs: seeded %v, unseeded %v\n%s", e.Name, seeded.NonZero.Proved, plain.NonZero.Proved, e.F)
		}
		if seeded.Negative.Proved != plain.Negative.Proved {
			t.Errorf("%s: negative differs: seeded %v, unseeded %v\n%s", e.Name, seeded.Negative.Proved, plain.Negative.Proved, e.F)
		}
		if seeded.NonNegative.Proved != plain.NonNegative.Proved {
			t.Errorf("%s: non-negative differs: seeded %v, unseeded %v\n%s", e.Name, seeded.NonNegative.Proved, plain.NonNegative.Proved, e.F)
		}
		if seeded.PowerOfTwo.Proved != plain.PowerOfTwo.Proved {
			t.Errorf("%s: power-of-two differs: seeded %v, unseeded %v\n%s", e.Name, seeded.PowerOfTwo.Proved, plain.PowerOfTwo.Proved, e.F)
		}
		if !seeded.Range.Exhausted && !plain.Range.Exhausted {
			// Several distinct minimal windows can tie; require equal size
			// and that each covers everything the other claims achievable.
			ss, shuge := seeded.Range.Range.Size()
			ps, phuge := plain.Range.Range.Size()
			if ss != ps || shuge != phuge {
				t.Errorf("%s: range sizes differ: seeded %v, unseeded %v\n%s", e.Name, seeded.Range.Range, plain.Range.Range, e.F)
			}
		}
		for name, want := range plain.Demanded.Demanded {
			if got := seeded.Demanded.Demanded[name]; got.Ne(want) {
				t.Errorf("%s: demanded bits for %%%s differ: seeded %v, unseeded %v\n%s", e.Name, name, got, want, e.F)
			}
		}
	}
}

// TestSeedPrunesQueries checks the seed actually saves solver work where
// it should: a constant-output expression needs zero known-bits queries
// beyond the feasibility check.
func TestSeedPrunesQueries(t *testing.T) {
	f := ir.MustParse("%x:i32 = var\n%0:i32 = and %x, 0:i32\ninfer %0")
	e := solver.NewSAT(f, 0)
	sd := ComputeSeed(f)
	if !sd.Valid || !sd.Known.IsConstant() {
		t.Fatalf("seed did not recognize the constant output: %+v", sd)
	}
	res := KnownBitsSeeded(e, f, sd)
	if !res.Feasible || res.Exhausted {
		t.Fatalf("unexpected outcome: %+v", res.Outcome)
	}
	if !res.Bits.IsConstant() || !res.Bits.Constant().IsZero() {
		t.Fatalf("known bits = %v, want constant 0", res.Bits)
	}
	st := e.Stats()
	if st.Queries != 1 { // the feasibility check
		t.Errorf("queries = %d, want 1 (feasibility only)", st.Queries)
	}
	// A known-zero bit saves the one "can it be 1?" query the unseeded
	// algorithm would pose (it never asks the second question for bits
	// that cannot be 1).
	if st.Pruned != 32 {
		t.Errorf("pruned = %d, want 32", st.Pruned)
	}
}

// TestEnrichFromKnownRefinesOnly checks enrichment only ever tightens the
// seed, and a contradictory meet never invalidates soundness bookkeeping
// (contradictions imply infeasibility, which the algorithms test first).
func TestEnrichFromKnownRefinesOnly(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = or %x, 128:i8\ninfer %0")
	sd := ComputeSeed(f)
	before := sd.Known
	sd.EnrichFromKnown(before, true)
	if !sd.Known.Eq(before) {
		t.Errorf("self-enrichment changed the seed: %v -> %v", before, sd.Known)
	}
	if !sd.Exact {
		t.Error("exact enrichment did not mark the seed exact")
	}
	var inv Seed
	inv.EnrichFromKnown(before, true)
	if inv.Valid {
		t.Error("enriching an invalid seed validated it")
	}
}

// TestSeedNeverFromAnalyzerUnderTest pins the §4.7 masking property: the
// seed must come from the trusted analyzer, so injecting a bug into the
// comparator's analyzer must not change any seeded oracle result. The
// PR12541 srem trigger is the expression whose facts the bug corrupts.
func TestSeedNeverFromAnalyzerUnderTest(t *testing.T) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = srem %x, 4:i8\ninfer %0")
	sd := ComputeSeed(f)
	res := AnalyzeAllWith(solver.NewEngine(f, solver.Config{}), f, sd)
	// Brute-force the true known bits.
	var union, inter *apint.Int
	eval.ForEachInput(f, func(env eval.Env) bool {
		v, ok := eval.Eval(f, env)
		if !ok {
			return true
		}
		if union == nil {
			u, i := v, v
			union, inter = &u, &i
		} else {
			u, i := union.Or(v), inter.And(v)
			union, inter = &u, &i
		}
		return true
	})
	if union == nil {
		t.Fatal("expression infeasible")
	}
	one := *inter       // bits one in every output
	zero := union.Not() // bits zero in every output
	if !res.Known.Bits.Zero.Eq(zero) || !res.Known.Bits.One.Eq(one) {
		t.Errorf("seeded known bits %v do not match brute force (zero=%v one=%v)", res.Known.Bits, zero, one)
	}
}
