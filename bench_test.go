// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus microbenchmarks for each substrate. Run with:
//
//	go test -bench=. -benchmem
//
// Table 1 benches measure the full comparator (LLVM-port analyses + the
// solver-based oracle) per analysis row. Table 2 benches measure the
// fact-driven optimizer under both fact sources. The §3.1 bench measures
// corpus harvesting, and the Figure 2 bench the known-bits lattice
// operations the separability argument relies on.
package dfcheck_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dfcheck/internal/apint"
	"dfcheck/internal/bitblast"
	"dfcheck/internal/compare"
	"dfcheck/internal/constrange"
	"dfcheck/internal/eval"
	"dfcheck/internal/factsvc"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/knownbits"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/opt"
	"dfcheck/internal/oracle"
	"dfcheck/internal/rescache"
	"dfcheck/internal/sat"
	"dfcheck/internal/solver"
)

// benchCorpus is a small deterministic corpus at solver-friendly widths.
func benchCorpus(n int) []harvest.Expr {
	return harvest.Generate(harvest.Config{
		Seed:     42,
		NumExprs: n,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 8, Weight: 3}, {Width: 4, Weight: 1}},
	})
}

// --- §3.1: corpus harvesting statistics ---

func BenchmarkHarvestCorpusStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus := harvest.Generate(harvest.Config{Seed: int64(i), NumExprs: 200, MaxInsts: 20})
		_ = harvest.ComputeStats(corpus)
	}
}

// --- Table 1: one bench per analysis row ---

// benchTable1 measures the production oracle path per analysis: engine
// selection (enumeration below the width cutoff, strashed incremental SAT
// above), sound-fact seeding, and one shared engine per expression. The
// reported metrics expose the pre-solver work elimination: gates built vs
// deduped by strashing, queries answered by the seed, and queries served
// by enumeration.
func benchTable1(b *testing.B, analysis harvest.Analysis, run func(e solver.Engine, f *ir.Function, sd oracle.Seed)) {
	corpus := benchCorpus(20)
	an := &llvmport.Analyzer{}
	var stats solver.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats = solver.Stats{}
		for _, e := range corpus {
			fa := an.Analyze(e.F)
			_ = fa
			eng := solver.NewEngine(e.F, solver.Config{})
			run(eng, e.F, oracle.ComputeSeed(e.F))
			stats.Add(eng.Stats())
		}
	}
	b.ReportMetric(float64(len(corpus)), "exprs/op")
	b.ReportMetric(float64(stats.GatesBuilt), "gates/op")
	b.ReportMetric(float64(stats.GatesDeduped), "gates-deduped/op")
	b.ReportMetric(float64(stats.Clauses), "clauses/op")
	b.ReportMetric(float64(stats.Pruned), "pruned-queries/op")
	b.ReportMetric(float64(stats.EnumQueries), "enum-queries/op")
	_ = analysis
}

func BenchmarkTable1_KnownBits(b *testing.B) {
	benchTable1(b, harvest.KnownBits, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.KnownBitsSeeded(e, f, sd)
	})
}

func BenchmarkTable1_SignBits(b *testing.B) {
	benchTable1(b, harvest.SignBits, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.SignBitsSeeded(e, f, sd)
	})
}

func BenchmarkTable1_NonZero(b *testing.B) {
	benchTable1(b, harvest.NonZero, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.NonZeroSeeded(e, f, sd)
	})
}

func BenchmarkTable1_Negative(b *testing.B) {
	benchTable1(b, harvest.Negative, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.NegativeSeeded(e, f, sd)
	})
}

func BenchmarkTable1_NonNegative(b *testing.B) {
	benchTable1(b, harvest.NonNegative, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.NonNegativeSeeded(e, f, sd)
	})
}

func BenchmarkTable1_PowerOfTwo(b *testing.B) {
	benchTable1(b, harvest.PowerOfTwo, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.PowerOfTwoSeeded(e, f, sd)
	})
}

func BenchmarkTable1_IntegerRange(b *testing.B) {
	benchTable1(b, harvest.IntegerRange, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.IntegerRangeSeeded(e, f, sd)
	})
}

func BenchmarkTable1_DemandedBits(b *testing.B) {
	benchTable1(b, harvest.DemandedBits, func(e solver.Engine, f *ir.Function, sd oracle.Seed) {
		oracle.DemandedBits(e, f)
	})
}

// benchDupCorpus is a duplication-heavy corpus shaped like the §3.1
// harvest statistics: each unique expression appears as up to ten
// shuffled alpha-variants, per its sampled frequency.
func benchDupCorpus() []harvest.Expr {
	return harvest.DuplicationShaped(harvest.Config{
		Seed:     45,
		NumExprs: 20,
		MaxInsts: 5,
		Widths:   []harvest.WidthWeight{{Width: 8, Weight: 3}, {Width: 4, Weight: 1}},
	}, 10)
}

func BenchmarkTable1_FullComparator(b *testing.B) {
	corpus := benchDupCorpus()
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Run(corpus)
	}
	b.ReportMetric(float64(len(corpus)), "exprs/op")
}

// BenchmarkTable1_FullComparator_Cached measures the duplication-aware
// path over the same corpus with a fresh cache per iteration: the win is
// pure within-run canonical deduplication (the cross-run win is larger;
// see _WarmCache).
func BenchmarkTable1_FullComparator_Cached(b *testing.B) {
	corpus := benchDupCorpus()
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cache = rescache.New()
		_ = c.Run(corpus)
	}
	b.ReportMetric(float64(len(corpus)), "exprs/op")
}

// BenchmarkTable1_FullComparator_WarmCache reuses one cache across
// iterations: after the first, every oracle query is a hit — the
// steady-state cost of regenerating Table 1 from a cache file.
func BenchmarkTable1_FullComparator_WarmCache(b *testing.B) {
	corpus := benchDupCorpus()
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{}, Cache: rescache.New()}
	_ = c.Run(corpus) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Run(corpus)
	}
	b.ReportMetric(float64(len(corpus)), "exprs/op")
}

// --- Table 2: one bench per benchmark kernel, baseline and precise ---

func benchTable2Baseline(b *testing.B, idx int) {
	k := opt.Kernels[idx]
	envs := k.Workload(100)
	m := opt.AMD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := k.F()
		optimized := opt.Optimize(f, opt.NewBaselineSource(f))
		if _, _, err := m.RunWorkload(optimized, envs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable2Precise(b *testing.B, idx int) {
	k := opt.Kernels[idx]
	envs := k.Workload(100)
	m := opt.AMD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := k.F()
		optimized := opt.Optimize(f, opt.NewOracleSource(f, 0))
		if _, _, err := m.RunWorkload(optimized, envs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Bzip2Compress_Baseline(b *testing.B) { benchTable2Baseline(b, 0) }
func BenchmarkTable2_Bzip2Compress_Precise(b *testing.B)  { benchTable2Precise(b, 0) }

func BenchmarkTable2_Bzip2Decompress_Baseline(b *testing.B) { benchTable2Baseline(b, 1) }
func BenchmarkTable2_Bzip2Decompress_Precise(b *testing.B)  { benchTable2Precise(b, 1) }

func BenchmarkTable2_GzipCompress_Baseline(b *testing.B) { benchTable2Baseline(b, 2) }
func BenchmarkTable2_GzipCompress_Precise(b *testing.B)  { benchTable2Precise(b, 2) }

func BenchmarkTable2_GzipDecompress_Baseline(b *testing.B) { benchTable2Baseline(b, 3) }
func BenchmarkTable2_GzipDecompress_Precise(b *testing.B)  { benchTable2Precise(b, 3) }

func BenchmarkTable2_Stockfish_Baseline(b *testing.B) { benchTable2Baseline(b, 4) }
func BenchmarkTable2_Stockfish_Precise(b *testing.B)  { benchTable2Precise(b, 4) }

func BenchmarkTable2_SQLite_Baseline(b *testing.B) { benchTable2Baseline(b, 5) }
func BenchmarkTable2_SQLite_Precise(b *testing.B)  { benchTable2Precise(b, 5) }

// --- Figure 2: the known-bits lattice operations ---

func BenchmarkFigure2_KnownBitsLattice(b *testing.B) {
	facts := make([]knownbits.Bits, 64)
	for i := range facts {
		facts[i] = knownbits.Make(apint.New(16, uint64(i*37)&0xF0F0), apint.New(16, uint64(i*53)&0x0F0F))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := knownbits.Unknown(16)
		for _, f := range facts {
			acc = acc.Join(f)
			_ = f.AtLeastAsPreciseAs(acc)
		}
	}
}

// --- §4.7: soundness-bug detection end to end ---

func BenchmarkSoundnessDetection(b *testing.B) {
	trigger := ir.MustParse(harvest.SoundnessTriggers[2].Source) // srem known-bits at i8
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{Bugs: llvmport.BugConfig{SRemKnownBits: true}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		for _, r := range c.CompareExpr(trigger) {
			if r.Outcome == compare.LLVMMorePrecise {
				found = true
			}
		}
		if !found {
			b.Fatal("bug not detected")
		}
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkSATPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		n := 6
		vars := make([][]sat.Var, n+1)
		for p := range vars {
			vars[p] = make([]sat.Var, n)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			lits := make([]sat.Lit, n)
			for h := 0; h < n; h++ {
				lits[h] = sat.PosLit(vars[p][h])
			}
			s.AddClause(lits...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(sat.NegLit(vars[p1][h]), sat.NegLit(vars[p2][h]))
				}
			}
		}
		if got := s.Solve(); got != sat.Unsat {
			b.Fatalf("PHP(%d) = %v", n, got)
		}
	}
}

func BenchmarkBitblastMul16(b *testing.B) {
	f := ir.MustParse("%x:i16 = var\n%y:i16 = var\n%0:i16 = mul %x, %y\ninfer %0")
	for i := 0; i < b.N; i++ {
		s := sat.New()
		bl := bitblast.Blast(s, f)
		_ = bl
	}
}

func BenchmarkOracleKnownBits32(b *testing.B) {
	f := ir.MustParse("%x:i32 = var\n%0:i32 = shl 32:i32, %x\ninfer %0")
	for i := 0; i < b.N; i++ {
		res := oracle.KnownBits(solver.NewSAT(f, 0), f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkLLVMPortAnalyze(b *testing.B) {
	corpus := benchCorpus(50)
	var an llvmport.Analyzer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range corpus {
			fa := an.Analyze(e.F)
			_ = fa.KnownBits()
			_ = fa.Range()
			_ = fa.NumSignBits()
			_ = fa.DemandedBits()
		}
	}
}

func BenchmarkEvalInterpreter(b *testing.B) {
	k := opt.Kernels[0]
	f := k.F()
	envs := k.Workload(1)
	env, err := eval.EnvFromNames(f, envs[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := eval.Eval(f, env); !ok {
			b.Fatal("unexpected UB")
		}
	}
}

func BenchmarkConstRangeTransfers(b *testing.B) {
	x := constrange.New(apint.New(32, 10), apint.New(32, 5000))
	y := constrange.New(apint.New(32, 3), apint.New(32, 77))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
		_ = x.Sub(y)
		_ = x.Mul(y)
		_ = x.UDiv(y)
		_ = x.URem(y)
		_ = x.SRem(y)
		_ = x.And(y)
		_ = x.Or(y)
		_ = x.Shl(y)
		_ = x.LShr(y)
		_ = x.AShr(y)
	}
}

func BenchmarkAPIntOps(b *testing.B) {
	x := apint.New(64, 0xDEADBEEFCAFE1234)
	y := apint.New(64, 0x1234567890ABCDEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y).Mul(y).Xor(x).RotL(13).NumSignBits()
	}
}

// --- Ablation: hull-seeded Algorithm 3 vs the paper's literal version ---

func BenchmarkAblation_RangeHullSeeded(b *testing.B) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv 128:i8, %x\ninfer %0")
	for i := 0; i < b.N; i++ {
		res := oracle.IntegerRange(solver.NewSAT(f, 0), f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkAblation_RangeNaive(b *testing.B) {
	f := ir.MustParse("%x:i8 = var\n%0:i8 = udiv 128:i8, %x\ninfer %0")
	for i := 0; i < b.N; i++ {
		res := oracle.IntegerRangeNaive(solver.NewSAT(f, 0), f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
	}
}

// --- Ablation: SAT engine vs exhaustive enumeration oracle backend ---

func BenchmarkAblation_KnownBitsSATEngine(b *testing.B) {
	f := ir.MustParse("%x:i8 = var\n%y:i8 = var\n%0:i8 = mul %x, %y\n%1:i8 = and %0, 12:i8\ninfer %1")
	for i := 0; i < b.N; i++ {
		oracle.KnownBits(solver.NewSAT(f, 0), f)
	}
}

func BenchmarkAblation_KnownBitsEnumEngine(b *testing.B) {
	f := ir.MustParse("%x:i8 = var\n%y:i8 = var\n%0:i8 = mul %x, %y\n%1:i8 = and %0, 12:i8\ninfer %1")
	for i := 0; i < b.N; i++ {
		oracle.KnownBits(solver.NewEnum(f), f)
	}
}

// --- Ablation: structural hashing on vs off in the bit-blaster ---

func benchStrashAblation(b *testing.B, noStrash bool) {
	// add is commuted between the two copies: structural hashing
	// canonicalizes them to one adder and the xor rewrite folds the output
	// to constant zero; the unstrashed path keeps both adders and must
	// prove each output bit zero through the carry chains.
	f := ir.MustParse("%x:i32 = var\n%y:i32 = var\n%0:i32 = add %x, %y\n%1:i32 = add %y, %x\n%2:i32 = xor %0, %1\ninfer %2")
	var stats solver.Stats
	for i := 0; i < b.N; i++ {
		e := solver.NewSAT(f, 0)
		e.NoStrash = noStrash
		res := oracle.KnownBits(e, f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
		stats = e.Stats()
	}
	b.ReportMetric(float64(stats.GatesBuilt), "gates/op")
	b.ReportMetric(float64(stats.GatesDeduped), "gates-deduped/op")
	b.ReportMetric(float64(stats.Clauses), "clauses/op")
}

func BenchmarkAblation_BlastStrash(b *testing.B)   { benchStrashAblation(b, false) }
func BenchmarkAblation_BlastNoStrash(b *testing.B) { benchStrashAblation(b, true) }

// --- Ablation: incremental vs fresh-solver query paths ---

func BenchmarkAblation_DemandedBitsIncremental(b *testing.B) {
	f := ir.MustParse("%x:i16 = var\n%0:i16 = udiv %x, 1000:i16\ninfer %0")
	for i := 0; i < b.N; i++ {
		e := solver.NewSAT(f, 0)
		res := oracle.DemandedBits(e, f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkAblation_DemandedBitsFresh(b *testing.B) {
	f := ir.MustParse("%x:i16 = var\n%0:i16 = udiv %x, 1000:i16\ninfer %0")
	for i := 0; i < b.N; i++ {
		e := solver.NewSAT(f, 0)
		e.Fresh = true
		res := oracle.DemandedBits(e, f)
		if res.Exhausted {
			b.Fatal("exhausted")
		}
	}
}

// --- Classic (LLVM 8) vs Modern compiler under test ---

func BenchmarkCompilerClassic(b *testing.B) {
	corpus := benchCorpus(50)
	an := &llvmport.Analyzer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range corpus {
			fa := an.Analyze(e.F)
			_ = fa.KnownBits()
			_ = fa.Range()
		}
	}
}

// --- Fact-service core: sharded cache vs global mutex, warm pipeline ---

// mutexCache replicates the pre-sharding rescache design — one map, one
// mutex, counters under the same lock — as the in-file baseline for the
// concurrent-lookup comparison. (The real implementation is now sharded;
// this is what it replaced.)
type mutexCache struct {
	mu           sync.Mutex
	entries      map[rescache.Key]rescache.Entry
	hits, misses uint64
}

func (c *mutexCache) Get(k rescache.Key) (rescache.Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

func (c *mutexCache) Put(k rescache.Key, e rescache.Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = e
}

// benchCacheKeys is a shared key set for the cache benchmarks: distinct
// canonical-source strings of realistic length.
func benchCacheKeys(n int) []rescache.Key {
	keys := make([]rescache.Key, n)
	for i := range keys {
		keys[i] = rescache.Key{
			Expr:     fmt.Sprintf("%%x:i8 = var\n%%0:i8 = and %d:i8, %%x\n%%1:i8 = add %%x, %%0\ninfer %%1", i),
			Analysis: "known bits",
		}
	}
	return keys
}

// benchCacheParallel drives the warm concurrent-lookup workload (95% Get,
// 5% Put, 8x oversubscribed goroutines) against either cache. This is the
// fact-service steady state: many readers racing over memoized results
// with an occasional writer installing a new one.
func benchCacheParallel(b *testing.B, get func(rescache.Key) (rescache.Entry, bool), put func(rescache.Key, rescache.Entry)) {
	keys := benchCacheKeys(1024)
	ent := rescache.Entry{Value: `{"bits":"0000xxxx"}`}
	for _, k := range keys {
		put(k, ent)
	}
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if i%20 == 19 {
				put(k, ent)
			} else if _, ok := get(k); !ok {
				b.Fatal("warm key missing")
			}
			i++
		}
	})
}

func BenchmarkRescacheConcurrentMutex(b *testing.B) {
	c := &mutexCache{entries: make(map[rescache.Key]rescache.Entry)}
	benchCacheParallel(b, c.Get, c.Put)
}

func BenchmarkRescacheConcurrentSharded(b *testing.B) {
	c := rescache.New()
	benchCacheParallel(b, c.Get, c.Put)
}

// BenchmarkFactServiceWarm measures the full query pipeline at steady
// state: submit → hash-affinity dispatch → cache hit → ticket wait, with
// 8x oversubscribed clients racing over 8 pre-warmed expressions (so both
// the in-flight collapse path and the cache-hit path are exercised).
func BenchmarkFactServiceWarm(b *testing.B) {
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 8, Cache: rescache.New()}
	svc, err := c.NewFactService(factsvc.Config{Workers: 8, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	exprs := make([]*ir.Function, 8)
	for i := range exprs {
		exprs[i] = ir.MustParse(fmt.Sprintf("%%x:i8 = var\n%%0:i8 = and %d:i8, %%x\ninfer %%0", i+1))
		tk, err := svc.Submit(exprs[i])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tk.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f := exprs[i%len(exprs)]
			i++
			for {
				tk, err := svc.Submit(f)
				if err == factsvc.ErrSaturated {
					runtime.Gosched() // backpressure: retry like a polite client
					continue
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tk.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				break
			}
		}
	})
}

func BenchmarkCompilerModern(b *testing.B) {
	corpus := benchCorpus(50)
	an := &llvmport.Analyzer{Modern: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range corpus {
			fa := an.Analyze(e.F)
			_ = fa.KnownBits()
			_ = fa.Range()
		}
	}
}
