module dfcheck

go 1.22
