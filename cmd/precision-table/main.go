// precision-table regenerates the paper's Table 1: it harvests a corpus
// of expressions (a deterministic generator stands in for the SPEC CPU
// 2017 harvest, plus the paper's own fragments), runs the LLVM-port
// analyses and the solver-based oracle over every expression, and prints
// the same-precision / souper-more-precise / llvm-more-precise /
// resource-exhaustion breakdown per analysis with average CPU time.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dfcheck/internal/absint"
	"dfcheck/internal/compare"
	"dfcheck/internal/factsvc"
	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/ops"
	"dfcheck/internal/rescache"
	"dfcheck/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 300, "number of generated expressions")
		seed      = flag.Int64("seed", 2020, "generator seed")
		maxInsts  = flag.Int("max-insts", 8, "max instructions per expression")
		maxWidth  = flag.Uint("max-width", 16, "largest base bit width (keep small: the oracle bit-blasts every query)")
		budget    = flag.Int64("solver-budget", 0, "per-query conflict budget (0 = default)")
		fragsToo  = flag.Bool("paper-fragments", true, "include the paper's §4.2–4.5 fragments in the corpus")
		bug1      = flag.Bool("bug1", false, "re-introduce the r124183 isKnownNonZero bug")
		bug2      = flag.Bool("bug2", false, "re-introduce the PR23011 srem sign-bits bug")
		bug3      = flag.Bool("bug3", false, "re-introduce the PR12541 srem known-bits bug")
		modern    = flag.Bool("modern", false, "use the post-LLVM-8 compiler (the §4.8 improvements applied)")
		loadFile  = flag.String("corpus", "", "load the corpus from this file instead of generating (see -save-corpus)")
		saveFile  = flag.String("save-corpus", "", "write the corpus to this file before running (the artifact's dump.rdb analog)")
		asJSON    = flag.Bool("json", false, "emit the report as JSON instead of the table")
		cacheFile = flag.String("cache", "", "persist oracle results to this file across runs (the artifact's Redis dump analog); also dedups the corpus by canonical form")
		workers   = flag.Int("j", runtime.NumCPU(), "expressions compared concurrently")
		exprCap   = flag.Duration("expr-timeout", 5*time.Minute, "total oracle time per expression (the paper's 5-minute cap; 0 disables)")
		noStrash  = flag.Bool("no-strash", false, "ablation: disable structural hashing in the bit-blaster")
		noSeed    = flag.Bool("no-seed", false, "ablation: disable sound-fact seeding of the oracle")
		consist   = flag.Bool("consistency", true, "cross-check the compiler's own domains on every expression (solver-free reduced-product lint)")
		noConsist = flag.Bool("no-consistency", false, "disable the cross-domain consistency lint")
		domsFlag  = flag.String("domains", "", "extend the consistency lint's reduced product with these transfer domains (comma-separated, e.g. tnum,stride; empty = classic four-domain lint)")
		enumCut   = flag.Int("enum-cutoff", 0, "summed input bits at or below which expressions are enumerated instead of solved (0 = default, negative disables)")
		portfolio = flag.Int("portfolio", 0, "clones racing each hard SAT query with clause sharing (0 = default, 1 or negative disables)")
		noPortf   = flag.Bool("no-portfolio", false, "ablation: disable portfolio solving (same as -portfolio=-1)")
		portfSeed = flag.Int64("portfolio-seed", 0, "perturbation seed for portfolio clone heuristics (result-equivalent: not part of cache keys)")
		nwayMode  = flag.Bool("nway", false, "n-way differential mode: cross-check all analyzer variants per expression and escalate to the SAT oracle only on disagreement")
		reduceF   = flag.Bool("reduce", false, "shrink every finding to a 1-minimal reproducer preserving its finding kind (delta debugging)")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON span trace to this file (open in Perfetto, aggregate with trace-report)")
		traceMax  = flag.Int64("trace-max-mb", 256, "rotate the trace file when it exceeds this many MiB (0 = unbounded)")
		shards    = flag.Int("shards", rescache.DefaultShards, "lock stripes in the oracle result cache (rounded up to a power of two)")
		httpAddr  = flag.String("http", "", "serve the debug server on this address (expvar at /debug/vars, pprof at /debug/pprof/)")
		factSvc   = flag.Bool("factsvc", false, "after printing the table, serve the fact-service query API (POST /v1/facts) on the -http server until interrupted")
	)
	flag.Parse()

	widths := []harvest.WidthWeight{{Width: 4, Weight: 10}, {Width: 8, Weight: 45}}
	if *maxWidth >= 13 {
		widths = append(widths, harvest.WidthWeight{Width: 13, Weight: 15})
	}
	if *maxWidth >= 16 {
		widths = append(widths, harvest.WidthWeight{Width: 16, Weight: 30})
	}
	var corpus []harvest.Expr
	if *loadFile != "" {
		data, err := os.Open(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
		corpus, err = harvest.ReadCorpus(data)
		data.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
	} else {
		corpus = harvest.Generate(harvest.Config{
			Seed:         *seed,
			NumExprs:     *n,
			MaxInsts:     *maxInsts,
			Widths:       widths,
			MaxCastWidth: *maxWidth,
		})
		if *fragsToo {
			for _, fr := range harvest.PaperFragments {
				corpus = append(corpus, harvest.Expr{Name: "paper-" + fr.Name, F: fr.TestF(), Freq: 1})
			}
		}
	}
	if *saveFile != "" {
		out, err := os.Create(*saveFile)
		if err == nil {
			err = harvest.WriteCorpus(out, corpus)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
	}

	if !*asJSON {
		stats := harvest.ComputeStats(corpus)
		fmt.Println("Corpus (stand-in for the SPEC CPU 2017 harvest, §3.1):")
		fmt.Print(stats)
		fmt.Println()
	}

	var tracer *trace.Tracer
	if *traceFile != "" {
		var err error
		tracer, err = trace.NewFile(*traceFile, *traceMax<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
	}

	doms, err := absint.DomainsByNames(*domsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precision-table:", err)
		os.Exit(2)
	}

	c := &compare.Comparator{
		Analyzer: &llvmport.Analyzer{
			Bugs:   llvmport.BugConfig{NonZeroAdd: *bug1, SRemSignBits: *bug2, SRemKnownBits: *bug3},
			Modern: *modern,
		},
		Budget:        *budget,
		Workers:       *workers,
		ExprTimeout:   *exprCap,
		NoStrash:      *noStrash,
		NoSeed:        *noSeed,
		EnumCutoff:    *enumCut,
		Portfolio:     *portfolio,
		PortfolioSeed: *portfSeed,
		Tracer:        tracer,
		Consistency:   *consist && !*noConsist,
		Domains:       doms,
		NWay:          *nwayMode,
		Reduce:        *reduceF,
	}
	if *noPortf {
		c.Portfolio = -1
	}
	if *cacheFile != "" || *factSvc {
		// -factsvc without -cache still wants memoization for repeated
		// queries; it just isn't persisted.
		cache := rescache.NewSharded(*shards)
		if *cacheFile != "" {
			switch err := cache.LoadFile(*cacheFile); {
			case err == nil:
			case os.IsNotExist(err):
				// First run: cold start is the expected path, stay quiet.
			default:
				// A corrupt or mismatched cache file means a cold start, not a
				// failed run — but say so, since the warm-up work is lost.
				fmt.Fprintf(os.Stderr, "precision-table: WARNING: cache %s unusable, starting cold: %v\n", *cacheFile, err)
			}
		}
		c.Cache = cache
	}
	health := ops.NewHealth()
	slowLog := metrics.NewSlowLog(metrics.DefaultSlowLogSize)
	if *httpAddr != "" {
		reg := metrics.NewRegistry()
		if err := reg.PublishExpvar("dfcheck"); err != nil {
			fmt.Fprintln(os.Stderr, "precision-table: WARNING: /debug/vars:", err)
		}
		c.Metrics = reg
		if c.Cache != nil {
			ops.CollectCache(reg, c.Cache)
		}
		(&ops.Server{Registry: reg, Health: health, Slow: slowLog}).Register(http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "precision-table: metrics server:", err)
			}
		}()
	}
	rep := c.Run(corpus)
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "precision-table: WARNING: trace incomplete: %v\n", err)
		}
	}
	if c.Cache != nil {
		if *cacheFile != "" { // a -factsvc-only cache is in-memory by design
			if err := c.Cache.SaveFile(*cacheFile); err != nil {
				fmt.Fprintf(os.Stderr, "precision-table: WARNING: cache not saved: %v\n", err)
			}
		}
		// Stderr, so stdout stays byte-identical between cold and warm runs.
		fmt.Fprintln(os.Stderr, rep.CacheSummary())
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		fmt.Println("Table 1: comparing the precision of the LLVM-port dataflow analyses")
		fmt.Println("and the solver-based maximally precise algorithms.")
		fmt.Println()
		fmt.Print(rep.Table())
	}

	if *factSvc {
		// Serve fact queries against the now-warm cache until interrupted.
		if *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "precision-table: -factsvc requires -http (the query API mounts on the debug server)")
			os.Exit(1)
		}
		svc, err := c.NewFactService(factsvc.Config{Workers: *workers, SlowLog: slowLog})
		if err != nil {
			fmt.Fprintln(os.Stderr, "precision-table:", err)
			os.Exit(1)
		}
		http.Handle("/v1/facts", svc.Handler())
		fmt.Fprintf(os.Stderr, "fact service: POST http://%s/v1/facts (interrupt to stop)\n", *httpAddr)
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		health.Ready() // table built, cache warm, worker pool up
		<-ctx.Done()
		health.NotReady("draining: interrupt received")
		stop()
		svc.Close()
	}

	if len(rep.Findings) > 0 {
		os.Exit(1) // soundness bugs found
	}
}
