// harvest-stats regenerates the corpus statistics of §3.1. The paper
// harvested 269,113 unique Souper expressions by compiling SPEC CPU 2017;
// this tool generates a deterministic corpus whose duplication
// distribution is calibrated to the paper's quantiles (71.6% encountered
// more than once, 11.4% more than 10 times, 1.6% more than 100 times) and
// prints the same summary.
package main

import (
	"flag"
	"fmt"

	"dfcheck/internal/harvest"
)

func main() {
	var (
		n        = flag.Int("n", 269113, "number of unique expressions (paper: 269,113)")
		seed     = flag.Int64("seed", 2017, "generator seed")
		maxInsts = flag.Int("max-insts", 340, "max instructions per expression (uniform draw; the paper reports a 98-instruction average)")
	)
	flag.Parse()

	stats := harvest.StreamingStats(harvest.Config{
		Seed:     *seed,
		NumExprs: *n,
		MaxInsts: *maxInsts,
	})
	fmt.Printf("Corpus statistics (stand-in for the §3.1 SPEC CPU 2017 harvest):\n\n")
	fmt.Print(stats)
	fmt.Println("\npaper reference: 269113 unique; >1x: 71.6%; >10x: 11.4%; >100x: 1.6%")
}
