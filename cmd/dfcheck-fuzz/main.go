// dfcheck-fuzz runs the paper's testing loop continuously: generate a
// batch of random expressions, compare the compiler-under-test's dataflow
// facts against the maximally precise oracle, report any soundness
// findings ("llvm is stronger"), and keep going with the next seed. This
// is the workflow the authors ran over Csmith- and Yarpgen-generated
// programs after exhausting SPEC (§4.7).
//
//	dfcheck-fuzz -batches 20 -n 50
//	dfcheck-fuzz -bug3          # verify the loop catches an injected bug
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/rescache"
)

func main() {
	var (
		batches   = flag.Int("batches", 10, "number of corpus batches to run (0 = run forever)")
		n         = flag.Int("n", 50, "expressions per batch")
		seed      = flag.Int64("seed", time.Now().UnixNano()&0xFFFFFF, "starting seed")
		maxInsts  = flag.Int("max-insts", 6, "max instructions per expression")
		maxWidth  = flag.Uint("max-width", 16, "largest base width")
		budget    = flag.Int64("solver-budget", 0, "per-query conflict budget")
		bug1      = flag.Bool("bug1", false, "inject the r124183 isKnownNonZero bug")
		bug2      = flag.Bool("bug2", false, "inject the PR23011 srem sign-bits bug")
		bug3      = flag.Bool("bug3", false, "inject the PR12541 srem known-bits bug")
		modern    = flag.Bool("modern", false, "use the post-LLVM-8 compiler (the §4.8 improvements applied)")
		workers   = flag.Int("j", runtime.NumCPU(), "expressions compared concurrently")
		exprCap   = flag.Duration("expr-timeout", 5*time.Minute, "total oracle time per expression (0 disables)")
		canaries  = flag.Bool("canaries", false, "seed every batch with the §4.7 trigger expressions (verifies the loop catches injected bugs)")
		mutants   = flag.Int("mutants", 1, "mutated variants added per generated expression (Csmith-style seed mutation)")
		cacheFile = flag.String("cache", "", "persist oracle results to this file across batches and runs (the artifact's Redis dump analog)")
	)
	flag.Parse()

	widths := []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 3}}
	if *maxWidth >= 13 {
		widths = append(widths, harvest.WidthWeight{Width: 13, Weight: 1})
	}
	if *maxWidth >= 16 {
		widths = append(widths, harvest.WidthWeight{Width: 16, Weight: 2})
	}

	c := &compare.Comparator{
		Analyzer: &llvmport.Analyzer{
			Bugs:   llvmport.BugConfig{NonZeroAdd: *bug1, SRemSignBits: *bug2, SRemKnownBits: *bug3},
			Modern: *modern,
		},
		Budget:      *budget,
		Workers:     *workers,
		ExprTimeout: *exprCap,
	}
	if *cacheFile != "" {
		// One cache shared across all batches: mutants and cross-batch
		// duplicates hit results memoized by earlier batches.
		cache := rescache.New()
		if err := cache.LoadFile(*cacheFile); err != nil && !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz: ignoring cache:", err)
		}
		c.Cache = cache
	}

	var totalExprs, totalFindings int
	start := time.Now()
	for batch := 0; *batches == 0 || batch < *batches; batch++ {
		corpus := harvest.Generate(harvest.Config{
			Seed:         *seed + int64(batch),
			NumExprs:     *n,
			MaxInsts:     *maxInsts,
			Widths:       widths,
			MaxCastWidth: *maxWidth,
		})
		if *mutants > 0 {
			mrng := rand.New(rand.NewSource(*seed + int64(batch)*7919))
			base := corpus
			for _, e := range base {
				for m := 0; m < *mutants; m++ {
					corpus = append(corpus, harvest.Expr{
						Name: fmt.Sprintf("%s-mut%d", e.Name, m),
						F:    harvest.Mutate(e.F, mrng),
						Freq: 1,
					})
				}
			}
		}
		if *canaries {
			for _, tr := range harvest.SoundnessTriggers {
				corpus = append(corpus, harvest.Expr{Name: "canary-" + tr.Name, F: ir.MustParse(tr.Source), Freq: 1})
			}
		}
		rep := c.Run(corpus)
		totalExprs += len(corpus)
		totalFindings += len(rep.Findings)
		for _, f := range rep.Findings {
			fmt.Printf("=== SOUNDNESS FINDING (batch %d, %s) ===\n%s\n", batch, f.ExprName, f)
		}
		var exhausted int
		for _, row := range rep.Rows {
			exhausted += row.Exhausted
		}
		fmt.Printf("batch %4d seed %8d: %4d exprs, %2d findings, %3d exhausted, %6.1f exprs/min\n",
			batch, *seed+int64(batch), len(corpus), len(rep.Findings), exhausted,
			float64(totalExprs)/time.Since(start).Minutes())
	}

	if c.Cache != nil {
		if err := c.Cache.SaveFile(*cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
		}
		st := c.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
			st.Hits, st.Misses, 100*st.HitRate(), c.Cache.Len())
	}

	fmt.Printf("\ntotal: %d expressions, %d soundness findings\n", totalExprs, totalFindings)
	if totalFindings > 0 {
		os.Exit(1)
	}
}
