// dfcheck-fuzz runs the paper's testing loop continuously: generate a
// batch of random expressions, compare the compiler-under-test's dataflow
// facts against the maximally precise oracle, report any soundness
// findings ("llvm is stronger"), and keep going with the next seed. This
// is the workflow the authors ran over Csmith- and Yarpgen-generated
// programs after exhausting SPEC (§4.7).
//
// The loop is built for long unattended runs: Ctrl-C (or SIGTERM) stops
// it cleanly mid-batch, -checkpoint persists the campaign state so
// -resume continues to the exact report an uninterrupted run would have
// produced, -events streams JSONL batch/finding records, and -metrics
// snapshots the instrument registry on exit.
//
//	dfcheck-fuzz -batches 20 -n 50
//	dfcheck-fuzz -bug3          # verify the loop catches an injected bug
//	dfcheck-fuzz -batches 0 -checkpoint state.json -events events.jsonl
//	dfcheck-fuzz -resume state.json   # continue where the kill landed
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dfcheck/internal/absint"
	"dfcheck/internal/campaign"
	"dfcheck/internal/compare"
	"dfcheck/internal/factsvc"
	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/metrics"
	"dfcheck/internal/ops"
	"dfcheck/internal/rescache"
	"dfcheck/internal/trace"
)

func main() {
	var (
		batches    = flag.Int("batches", 10, "number of corpus batches to run (0 = run until interrupted)")
		n          = flag.Int("n", 50, "expressions per batch")
		seed       = flag.Int64("seed", 0, "campaign master seed (0 = draw a fresh 63-bit seed)")
		maxInsts   = flag.Int("max-insts", 6, "max instructions per expression")
		maxWidth   = flag.Uint("max-width", 16, "largest base width")
		budget     = flag.Int64("solver-budget", 0, "per-query conflict budget")
		bug1       = flag.Bool("bug1", false, "inject the r124183 isKnownNonZero bug")
		bug2       = flag.Bool("bug2", false, "inject the PR23011 srem sign-bits bug")
		bug3       = flag.Bool("bug3", false, "inject the PR12541 srem known-bits bug")
		modern     = flag.Bool("modern", false, "use the post-LLVM-8 compiler (the §4.8 improvements applied)")
		workers    = flag.Int("j", runtime.NumCPU(), "expressions compared concurrently")
		exprCap    = flag.Duration("expr-timeout", 5*time.Minute, "total oracle time per expression (0 disables)")
		canaries   = flag.Bool("canaries", false, "seed every batch with the §4.7 trigger expressions (verifies the loop catches injected bugs)")
		mutants    = flag.Int("mutants", 1, "mutated variants added per generated expression (Csmith-style seed mutation)")
		cacheFile  = flag.String("cache", "", "persist oracle results to this file across batches and runs (the artifact's Redis dump analog)")
		checkpoint = flag.String("checkpoint", "", "write campaign state to this file (periodically and on interrupt)")
		ckptEvery  = flag.Int("checkpoint-every", 10, "batches between periodic checkpoint saves (0 = only on interrupt/exit)")
		resume     = flag.String("resume", "", "resume the campaign from this state file (implies -checkpoint with the same file)")
		eventsFile = flag.String("events", "", "append JSONL batch and finding records to this file")
		metricsOut = flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
		noStrash   = flag.Bool("no-strash", false, "ablation: disable structural hashing in the bit-blaster")
		noSeed     = flag.Bool("no-seed", false, "ablation: disable sound-fact seeding of the oracle")
		consist    = flag.Bool("consistency", true, "cross-check the compiler's own domains on every expression (solver-free reduced-product lint)")
		noConsist  = flag.Bool("no-consistency", false, "disable the cross-domain consistency lint")
		domsFlag   = flag.String("domains", "", "extend the consistency lint's reduced product with these transfer domains (comma-separated, e.g. tnum,stride; empty = classic four-domain lint)")
		enumCut    = flag.Int("enum-cutoff", 0, "summed input bits at or below which expressions are enumerated instead of solved (0 = default, negative disables)")
		portfolio  = flag.Int("portfolio", 0, "clones racing each hard SAT query with clause sharing (0 = default, 1 or negative disables)")
		noPortf    = flag.Bool("no-portfolio", false, "ablation: disable portfolio solving (same as -portfolio=-1)")
		portfSeed  = flag.Int64("portfolio-seed", 0, "perturbation seed for portfolio clone heuristics (result-equivalent: not part of cache keys or checkpoint fingerprints)")
		nwayMode   = flag.Bool("nway", false, "n-way differential mode: cross-check all analyzer variants per expression and escalate to the SAT oracle only on disagreement")
		reduceMode = flag.Bool("reduce", false, "shrink every finding to a 1-minimal reproducer preserving its finding kind (delta debugging)")
		httpAddr   = flag.String("http", "", "serve the debug server on this address (e.g. :8125): expvar metrics at /debug/vars, pprof profiles at /debug/pprof/)")
		shards     = flag.Int("shards", rescache.DefaultShards, "lock stripes in the oracle result cache (rounded up to a power of two)")
		factSvc    = flag.Bool("factsvc", false, "serve the fact-service query API (POST /v1/facts) on the -http server, sharing the campaign's cache and in-flight dedup")
		serveOnly  = flag.Bool("serve", false, "serve fact queries only, skipping the campaign loop, until interrupted (implies -factsvc; requires -http)")
		traceFile  = flag.String("trace", "", "write a Chrome trace-event JSON span trace to this file (open in Perfetto, aggregate with trace-report)")
		traceMaxMB = flag.Int64("trace-max-mb", 256, "rotate the trace file when it exceeds this many MiB (0 = unbounded)")
		drain      = flag.Duration("drain", 0, "after an interrupt in -serve mode, keep answering for this long with /readyz reporting 503 (load-balancer drain window)")
		slowLogN   = flag.Int("slow-log", metrics.DefaultSlowLogSize, "slowest solves retained for /slowz and /dashboardz (0 disables)")
		traceSamp  = flag.Int("trace-sample", 1, "record only 1 in N fact-service solve spans (slow solves always recorded)")
	)
	flag.Parse()

	// The master seed covers the full non-negative 63-bit range (the old
	// 24-bit default meant long campaigns revisited seeds). Campaigns are
	// reproducible from the printed value alone.
	if *seed == 0 {
		*seed = rand.New(rand.NewSource(time.Now().UnixNano())).Int63()
	}
	if *resume != "" && *checkpoint == "" {
		*checkpoint = *resume
	}

	widths := []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 3}}
	if *maxWidth >= 13 {
		widths = append(widths, harvest.WidthWeight{Width: 13, Weight: 1})
	}
	if *maxWidth >= 16 {
		widths = append(widths, harvest.WidthWeight{Width: 16, Weight: 2})
	}

	reg := metrics.NewRegistry()
	if err := reg.PublishExpvar("dfcheck"); err != nil {
		fmt.Fprintln(os.Stderr, "dfcheck-fuzz: WARNING: /debug/vars:", err)
	}
	var slowLog *metrics.SlowLog
	if *slowLogN > 0 {
		slowLog = metrics.NewSlowLog(*slowLogN)
	}
	health := ops.NewHealth()
	if *httpAddr != "" {
		// expvar registers /debug/vars and net/http/pprof registers
		// /debug/pprof/* on the default mux; the ops endpoints
		// (/metricsz, /healthz, /readyz, /dashboardz, /eventsz, /slowz)
		// mount beside them.
		(&ops.Server{Registry: reg, Health: health, Slow: slowLog}).Register(http.DefaultServeMux)
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dfcheck-fuzz: metrics server:", err)
			}
		}()
	}

	var tracer *trace.Tracer
	if *traceFile != "" {
		var err error
		tracer, err = trace.NewFile(*traceFile, *traceMaxMB<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
			os.Exit(2)
		}
	}

	doms, err := absint.DomainsByNames(*domsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
		os.Exit(2)
	}

	c := &compare.Comparator{
		Analyzer: &llvmport.Analyzer{
			Bugs:   llvmport.BugConfig{NonZeroAdd: *bug1, SRemSignBits: *bug2, SRemKnownBits: *bug3},
			Modern: *modern,
		},
		Budget:        *budget,
		Workers:       *workers,
		ExprTimeout:   *exprCap,
		Metrics:       reg,
		Tracer:        tracer,
		NoStrash:      *noStrash,
		NoSeed:        *noSeed,
		EnumCutoff:    *enumCut,
		Portfolio:     *portfolio,
		PortfolioSeed: *portfSeed,
		Consistency:   *consist && !*noConsist,
		Domains:       doms,
		NWay:          *nwayMode,
		Reduce:        *reduceMode,
	}
	if *noPortf {
		c.Portfolio = -1
	}
	if *serveOnly {
		*factSvc = true
	}
	if *cacheFile != "" {
		// One cache shared across all batches: mutants and cross-batch
		// duplicates hit results memoized by earlier batches.
		cache := rescache.NewSharded(*shards)
		switch err := cache.LoadFile(*cacheFile); {
		case err == nil:
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "dfcheck-fuzz: cache %s not found, starting cold\n", *cacheFile)
		default:
			fmt.Fprintf(os.Stderr, "dfcheck-fuzz: WARNING: cache %s unusable, starting cold: %v\n", *cacheFile, err)
		}
		c.Cache = cache
	}
	if *factSvc {
		if *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz: -factsvc requires -http (the query API mounts on the debug server)")
			os.Exit(2)
		}
		if c.Cache == nil {
			// Serving without -cache still wants memoization; it just
			// isn't persisted.
			c.Cache = rescache.NewSharded(*shards)
		}
		svc, err := c.NewFactService(factsvc.Config{
			Workers:     *workers,
			SlowLog:     slowLog,
			TraceSample: *traceSamp,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
			os.Exit(2)
		}
		defer svc.Close()
		http.Handle("/v1/facts", svc.Handler())
	}
	cacheShards := 0
	if c.Cache != nil {
		cacheShards = c.Cache.Shards()
		ops.CollectCache(reg, c.Cache)
	}

	var events *metrics.EventLog
	if *eventsFile != "" {
		f, err := os.OpenFile(*eventsFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
			os.Exit(2)
		}
		defer f.Close()
		events = metrics.NewEventLog(f)
	}

	camp := campaign.New(campaign.Config{
		Seed:            *seed,
		Batches:         *batches,
		NumExprs:        *n,
		MaxInsts:        *maxInsts,
		Widths:          widths,
		MaxCastWidth:    *maxWidth,
		Mutants:         *mutants,
		Canaries:        *canaries,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *ckptEvery,
		Events:          events,
		Metrics:         reg,
		Progress:        os.Stdout,
		Tracer:          tracer,
		FactSvc:         *factSvc,
		CacheShards:     cacheShards,
	}, c)
	if *resume != "" {
		if err := camp.Resume(*resume); err != nil {
			fmt.Fprintln(os.Stderr, "dfcheck-fuzz:", err)
			os.Exit(2)
		}
		fmt.Printf("resumed from %s: %d batches done, continuing at batch %d\n",
			*resume, camp.Totals.Batches, camp.NextBatch)
	}
	fmt.Printf("campaign seed %d (reproduce with -seed %d)\n", *seed, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Cache loaded and (in serve mode) the worker pool is up: the
	// process can answer queries, so /readyz flips to 200.
	health.Ready()
	var runErr error
	if *serveOnly {
		// Serve-only mode: no campaign, just answer fact queries until
		// interrupted. Interruption is the normal shutdown, not an error.
		fmt.Printf("fact service: POST http://%s/v1/facts (interrupt to stop)\n", *httpAddr)
		<-ctx.Done()
		// Drain window: /readyz reports 503 so load balancers stop
		// routing here, while in-flight and late queries still answer.
		health.NotReady("draining: interrupt received")
		if *drain > 0 {
			fmt.Fprintf(os.Stderr, "draining for %v before shutdown\n", *drain)
			time.Sleep(*drain)
		}
	} else {
		runErr = camp.Run(ctx)
		health.NotReady("campaign finished")
	}
	stop() // a second Ctrl-C past this point kills the process normally

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dfcheck-fuzz: WARNING: trace incomplete: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "trace written to %s (%d rotation(s)); inspect with: trace-report %s\n",
				*traceFile, tracer.Rotations(), *traceFile)
		}
	}

	if c.Cache != nil {
		if *cacheFile != "" { // a -factsvc-only cache is in-memory by design
			if err := c.Cache.SaveFile(*cacheFile); err != nil {
				fmt.Fprintf(os.Stderr, "dfcheck-fuzz: WARNING: cache not saved: %v\n", err)
			}
		}
		st := c.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
			st.Hits, st.Misses, 100*st.HitRate(), c.Cache.Len())
	}
	if *metricsOut != "" {
		if data, err := reg.JSON(); err == nil {
			if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dfcheck-fuzz: WARNING: metrics not saved: %v\n", err)
			}
		}
	}
	if events != nil {
		if err := events.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "dfcheck-fuzz: WARNING: event log incomplete: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "metrics:", reg.String())

	if nw := camp.Totals.NWay; nw != nil {
		// One stable line for scripts (CI asserts escalations stay below
		// comparisons, i.e. the pre-filter actually filters).
		fmt.Printf("\nnway: %d exprs (%d agreed, %d escalated, %d dead); %d comparisons, %d disagreements, %d contradictions\n",
			nw.Exprs, nw.Agreed, nw.Escalated, nw.Dead, nw.Comparisons, nw.Disagreements, nw.Contradictions)
	}
	fmt.Printf("\ntotal: %d batches, %d expressions, %d soundness findings\n",
		camp.Totals.Batches, camp.Totals.Exprs, len(camp.Totals.Findings))
	if runErr != nil {
		if *checkpoint != "" {
			fmt.Printf("interrupted; resume with: dfcheck-fuzz -resume %s <same flags>\n", *checkpoint)
		} else {
			fmt.Println("interrupted (no -checkpoint file; this campaign cannot be resumed)")
		}
	}
	if len(camp.Totals.Findings) > 0 {
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(130)
	}
}
