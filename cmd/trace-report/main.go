// trace-report is the offline profiler for dfcheck trace files: it reads
// the Chrome trace-event JSON written by -trace (including rotated
// siblings), reconstructs the span hierarchy from the id/parent links,
// and prints hotspot tables — time and solver conflicts grouped by
// analysis, by root IR opcode, by bitwidth, and by query class — plus
// the top-N most expensive expressions, collapsed by canonical hash so a
// duplicated expression appears once with its total cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// event is one Chrome trace record ("X" spans and "M" metadata alike).
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// span is one reconstructed "X" event with its links decoded.
type span struct {
	event
	id, parent int64
	hasParent  bool
}

func (s *span) argInt(key string) int64 {
	if v, ok := s.Args[key].(float64); ok {
		return int64(v)
	}
	return 0
}

func (s *span) argStr(key string) string {
	v, _ := s.Args[key].(string)
	return v
}

// loadFile parses one trace file into spans.
func loadFile(path string) ([]*span, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var evs []event
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var out []*span
	for _, ev := range evs {
		if ev.Ph != "X" {
			continue
		}
		s := &span{event: ev}
		if v, ok := ev.Args["id"].(float64); ok {
			s.id = int64(v)
		}
		if v, ok := ev.Args["parent"].(float64); ok {
			s.parent, s.hasParent = int64(v), true
		}
		out = append(out, s)
	}
	return out, nil
}

// load reads each named file plus any rotated siblings (path.1, path.2,
// …). Rotated files come from the same tracer, so their span ids share
// one namespace; the id/parent links are what let a child in trace.json.2
// find its parent emitted into trace.json.
func load(paths []string) ([]*span, int, error) {
	var all []*span
	files := 0
	for _, p := range paths {
		spans, err := loadFile(p)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, spans...)
		files++
		for i := 1; ; i++ {
			sib := fmt.Sprintf("%s.%d", p, i)
			if _, err := os.Stat(sib); err != nil {
				break
			}
			spans, err := loadFile(sib)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, spans...)
			files++
		}
	}
	return all, files, nil
}

// bucket accumulates one grouping row.
type bucket struct {
	Key       string  `json:"key"`
	Count     int64   `json:"count"`
	Us        float64 `json:"time_us"`
	Conflicts int64   `json:"conflicts"`
}

type table []*bucket

func (tb *table) add(key string, us float64, conflicts int64) {
	for _, b := range *tb {
		if b.Key == key {
			b.Count++
			b.Us += us
			b.Conflicts += conflicts
			return
		}
	}
	*tb = append(*tb, &bucket{Key: key, Count: 1, Us: us, Conflicts: conflicts})
}

func (tb table) sorted() table {
	sort.SliceStable(tb, func(i, j int) bool { return tb[i].Us > tb[j].Us })
	return tb
}

// exprCost is one canonical expression's aggregate over all duplicates.
type exprCost struct {
	Hash      string  `json:"hash"`
	Opcode    string  `json:"opcode"`
	Width     int64   `json:"width"`
	Count     int64   `json:"count"`
	Us        float64 `json:"time_us"`
	Conflicts int64   `json:"conflicts"`
	Key       string  `json:"key"`
}

// portfolioAgg sums the portfolio attributes of query spans: how many
// hard queries escalated to racing clones, which clone answered, and the
// volume of level-0 units the clones exchanged.
type portfolioAgg struct {
	Runs          int64    `json:"runs"`
	Us            float64  `json:"time_us"`     // time of queries that escalated
	WinnerRuns    [4]int64 `json:"winner_runs"` // indexed by winning clone
	NoWinner      int64    `json:"no_winner"`   // exhausted or aborted runs
	UnitsImported int64    `json:"units_imported"`
	UnitsExported int64    `json:"units_exported"`
}

// report is the full aggregation, also the -json output shape.
type report struct {
	Files      int          `json:"files"`
	Spans      int          `json:"spans"`
	WallUs     float64      `json:"wall_us"`        // total root-span time
	ExprUs     float64      `json:"expr_us"`        // total expression time
	ByAnalysis table        `json:"by_analysis"`    // cat=analysis, by name
	ByOpcode   table        `json:"by_opcode"`      // cat=expr, by root opcode
	ByWidth    table        `json:"by_width"`       // cat=expr, by bitwidth
	ByClass    table        `json:"by_query_class"` // cat=query, by class
	TopExprs   []*exprCost  `json:"top_exprs"`
	QueryCount int64        `json:"queries"`
	QueryUs    float64      `json:"query_us"`
	Conflicts  int64        `json:"conflicts"` // summed over query spans
	Portfolio  portfolioAgg `json:"portfolio"`
}

func aggregate(spans []*span, topN int) *report {
	rep := &report{Spans: len(spans)}
	byHash := map[string]*exprCost{}
	for _, s := range spans {
		switch s.Cat {
		case "batch":
			// Only roots count toward wall clock: a campaign's per-batch
			// spans nest under its root and must not double-count.
			if !s.hasParent {
				rep.WallUs += s.Dur
			}
		case "expr":
			rep.ExprUs += s.Dur
			conflicts := s.argInt("conflicts")
			rep.ByOpcode.add(s.Name, s.Dur, conflicts)
			rep.ByWidth.add(fmt.Sprintf("i%d", s.argInt("width")), s.Dur, conflicts)
			h := s.argStr("hash")
			ec := byHash[h]
			if ec == nil {
				ec = &exprCost{Hash: h, Opcode: s.Name, Width: s.argInt("width"), Key: s.argStr("key")}
				byHash[h] = ec
			}
			ec.Count++
			ec.Us += s.Dur
			ec.Conflicts += conflicts
		case "analysis":
			rep.ByAnalysis.add(s.Name, s.Dur, 0)
		case "query":
			conflicts := s.argInt("conflicts")
			rep.ByClass.add(s.argStr("class"), s.Dur, conflicts)
			rep.QueryCount++
			rep.QueryUs += s.Dur
			rep.Conflicts += conflicts
			if runs := s.argInt("portfolio-runs"); runs > 0 {
				p := &rep.Portfolio
				p.Runs += runs
				p.Us += s.Dur
				p.UnitsImported += s.argInt("units-imported")
				p.UnitsExported += s.argInt("units-exported")
				// The winner attribute is the query's last run; runs per
				// query are almost always 1, so attributing all of them to
				// it keeps the histogram honest.
				if w := s.argInt("portfolio-winner"); w >= 0 && w < int64(len(p.WinnerRuns)) {
					p.WinnerRuns[w] += runs
				} else {
					p.NoWinner += runs
				}
			}
		}
	}
	// Query conflicts roll up into the enclosing analysis rows via the
	// parent chain (analysis spans do not carry counters themselves).
	index := make(map[int64]*span, len(spans))
	for _, s := range spans {
		index[s.id] = s
	}
	for _, s := range spans {
		if s.Cat != "query" {
			continue
		}
		for cur := s; cur.hasParent; {
			cur = index[cur.parent]
			if cur == nil {
				break
			}
			if cur.Cat == "analysis" {
				for _, b := range rep.ByAnalysis {
					if b.Key == cur.Name {
						b.Conflicts += s.argInt("conflicts")
					}
				}
				break
			}
		}
	}
	rep.ByAnalysis = rep.ByAnalysis.sorted()
	rep.ByOpcode = rep.ByOpcode.sorted()
	rep.ByWidth = rep.ByWidth.sorted()
	rep.ByClass = rep.ByClass.sorted()

	for _, ec := range byHash {
		rep.TopExprs = append(rep.TopExprs, ec)
	}
	sort.SliceStable(rep.TopExprs, func(i, j int) bool { return rep.TopExprs[i].Us > rep.TopExprs[j].Us })
	if len(rep.TopExprs) > topN {
		rep.TopExprs = rep.TopExprs[:topN]
	}
	return rep
}

func ms(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

func printTable(w io.Writer, title, keyHeader string, tb table) {
	if len(tb) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "  %-24s %8s %12s %12s\n", keyHeader, "count", "time", "conflicts")
	for _, b := range tb {
		fmt.Fprintf(w, "  %-24s %8d %12s %12d\n", b.Key, b.Count, ms(b.Us), b.Conflicts)
	}
}

func (rep *report) print(w io.Writer) {
	fmt.Fprintf(w, "trace-report: %d spans from %d file(s)\n", rep.Spans, rep.Files)
	fmt.Fprintf(w, "wall clock (root spans): %s\n", ms(rep.WallUs))
	fmt.Fprintf(w, "expression time:         %s", ms(rep.ExprUs))
	if rep.WallUs > 0 {
		fmt.Fprintf(w, "  (%.1f%% of wall; the rest is generation, harvest, and idle workers)",
			100*rep.ExprUs/rep.WallUs)
	}
	fmt.Fprintf(w, "\nsolver queries:          %d in %s, %d conflicts\n",
		rep.QueryCount, ms(rep.QueryUs), rep.Conflicts)

	printTable(w, "By analysis:", "analysis", rep.ByAnalysis)
	printTable(w, "By root opcode:", "opcode", rep.ByOpcode)
	printTable(w, "By bitwidth:", "width", rep.ByWidth)
	printTable(w, "By query class:", "class", rep.ByClass)

	if p := rep.Portfolio; p.Runs > 0 {
		fmt.Fprintf(w, "\nPortfolio (hard-query clone races):\n")
		fmt.Fprintf(w, "  %d run(s) in %s of query time; units exchanged: %d exported, %d imported\n",
			p.Runs, ms(p.Us), p.UnitsExported, p.UnitsImported)
		for i, n := range p.WinnerRuns {
			if n > 0 {
				fmt.Fprintf(w, "  clone %d won %d\n", i, n)
			}
		}
		if p.NoWinner > 0 {
			fmt.Fprintf(w, "  unresolved (exhausted/aborted) %d\n", p.NoWinner)
		}
	}

	if len(rep.TopExprs) > 0 {
		fmt.Fprintf(w, "\nTop %d expressions by oracle time (duplicates collapsed by canonical hash):\n", len(rep.TopExprs))
		for i, ec := range rep.TopExprs {
			fmt.Fprintf(w, "  #%d  %s  %s i%d  ×%d  %s  %d conflicts\n",
				i+1, ec.Hash, ec.Opcode, ec.Width, ec.Count, ms(ec.Us), ec.Conflicts)
			for _, line := range strings.Split(strings.TrimSpace(ec.Key), "\n") {
				fmt.Fprintf(w, "      %s\n", line)
			}
		}
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace-report", flag.ContinueOnError)
	topN := fs.Int("top", 10, "expressions to list in the top-N table")
	asJSON := fs.Bool("json", false, "emit the aggregation as JSON instead of tables")
	fs.SetOutput(w)
	fs.Usage = func() {
		fmt.Fprintf(w, "usage: trace-report [flags] trace.json [more.json ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no trace files given")
	}
	spans, files, err := load(fs.Args())
	if err != nil {
		return err
	}
	rep := aggregate(spans, *topN)
	rep.Files = files
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	rep.print(w)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace-report:", err)
		os.Exit(1)
	}
}
