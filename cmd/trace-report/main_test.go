package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/trace"
)

// writeTrace runs a real traced comparison into a (size-capped, hence
// possibly rotated) trace file and returns its path — the same pipeline a
// user profiles, not a synthetic fixture.
func writeTrace(t *testing.T, maxBytes int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := trace.NewFile(path, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	corpus := harvest.Generate(harvest.Config{
		Seed: 11, NumExprs: 12, MaxInsts: 4,
		Widths: []harvest.WidthWeight{{Width: 4, Weight: 1}, {Width: 8, Weight: 1}},
	})
	c := &compare.Comparator{Analyzer: &llvmport.Analyzer{}, Workers: 4, Tracer: tr}
	c.RunContext(context.Background(), corpus)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportPortfolioSection forces every nontrivial SAT query through
// the clone portfolio (threshold 1) and checks the report surfaces the
// new span attributes: runs, the winner histogram, and unit exchange.
func TestReportPortfolioSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := trace.NewFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	corpus := harvest.Generate(harvest.Config{
		Seed: 11, NumExprs: 12, MaxInsts: 4,
		Widths: []harvest.WidthWeight{{Width: 8, Weight: 1}},
	})
	c := &compare.Comparator{
		Analyzer: &llvmport.Analyzer{}, Workers: 2, Tracer: tr,
		Portfolio: 3, PortfolioAfter: 1,
	}
	c.RunContext(context.Background(), corpus)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	p := rep.Portfolio
	if p.Runs == 0 {
		t.Fatal("no portfolio runs recorded despite threshold 1")
	}
	var attributed int64
	for _, n := range p.WinnerRuns {
		attributed += n
	}
	if attributed+p.NoWinner != p.Runs {
		t.Fatalf("winner histogram %v + unresolved %d does not cover %d runs",
			p.WinnerRuns, p.NoWinner, p.Runs)
	}
	if p.Us <= 0 {
		t.Fatalf("portfolio queries recorded no time: %+v", p)
	}

	out.Reset()
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Portfolio (hard-query clone races):") {
		t.Errorf("text report missing the portfolio section:\n%s", out.String())
	}
}

func TestReportAggregatesTrace(t *testing.T) {
	path := writeTrace(t, 0)
	var out bytes.Buffer
	if err := run([]string{"-top", "3", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"By analysis:", "By root opcode:", "By bitwidth:", "By query class:",
		"known bits", "demanded bits", "validity", "Top 3 expressions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestReportJSONReconciles(t *testing.T) {
	path := writeTrace(t, 0)
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if rep.WallUs <= 0 {
		t.Fatalf("no wall clock recorded: %+v", rep)
	}
	// Expression time must reconcile with wall clock: every expr span
	// nests inside the root, and with 4 workers total expression time may
	// exceed wall but never by more than the worker count.
	if rep.ExprUs <= 0 || rep.ExprUs > 4*rep.WallUs {
		t.Fatalf("expr time %.0fus does not reconcile with wall %.0fus", rep.ExprUs, rep.WallUs)
	}
	// Per-analysis time is a partition of expression time.
	var analysisUs float64
	for _, b := range rep.ByAnalysis {
		analysisUs += b.Us
	}
	if analysisUs > rep.ExprUs*1.01 {
		t.Fatalf("analysis time %.0fus exceeds expression time %.0fus", analysisUs, rep.ExprUs)
	}
	if len(rep.ByAnalysis) != 8 {
		t.Fatalf("got %d analysis rows, want 8: %+v", len(rep.ByAnalysis), rep.ByAnalysis)
	}
	// Opcode and width tables partition the same expr spans: equal totals.
	var opUs, widthUs float64
	for _, b := range rep.ByOpcode {
		opUs += b.Us
	}
	for _, b := range rep.ByWidth {
		widthUs += b.Us
	}
	// Summation order differs per table, so compare within float slack.
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-6*math.Max(a, b) }
	if !close(opUs, rep.ExprUs) || !close(widthUs, rep.ExprUs) {
		t.Fatalf("opcode %.0f / width %.0f totals disagree with expr total %.0f", opUs, widthUs, rep.ExprUs)
	}
	// Conflicts from query spans roll up into analysis rows.
	var rollup int64
	for _, b := range rep.ByAnalysis {
		rollup += b.Conflicts
	}
	if rollup != rep.Conflicts {
		t.Fatalf("analysis conflict rollup %d != query total %d", rollup, rep.Conflicts)
	}
	for _, ec := range rep.TopExprs {
		if ec.Hash == "" || ec.Key == "" {
			t.Fatalf("top expression missing hash/key: %+v", ec)
		}
	}
}

func TestReportReadsRotatedFiles(t *testing.T) {
	path := writeTrace(t, 16*1024) // small cap: forces rotation mid-run
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Files < 2 {
		t.Fatalf("expected rotated siblings to be read, got %d file(s)", rep.Files)
	}
	// Spans split across files must still resolve their cross-file
	// parent links: the rollup invariant only holds if they do.
	var rollup int64
	for _, b := range rep.ByAnalysis {
		rollup += b.Conflicts
	}
	if rollup != rep.Conflicts {
		t.Fatalf("cross-file conflict rollup broken: %d != %d", rollup, rep.Conflicts)
	}
}

func TestReportErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no error for missing trace files")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.json")}, &out); err == nil {
		t.Fatal("no error for an absent file")
	}
}
