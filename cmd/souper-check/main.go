// souper-check mirrors the paper artifact's CLI: it reads one expression
// (Souper or LLVM-like textual form) and either infers maximally precise
// dataflow facts with the solver-based oracle (-infer-* flags, matching
// the artifact's option names), prints the LLVM-port compiler's facts
// (-print-*-at-return flags), or compares both sides (-compare).
//
//	souper-check -infer-known-bits input.opt
//	souper-check -print-known-at-return input.opt
//	souper-check -compare -bug2 input.opt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dfcheck/internal/core"
	"dfcheck/internal/llvmir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/opt"
	"dfcheck/internal/oracle"
	"dfcheck/internal/solver"
)

func main() {
	var (
		inferKnown    = flag.Bool("infer-known-bits", false, "oracle: maximally precise known bits")
		inferSign     = flag.Bool("infer-sign-bits", false, "oracle: maximally precise sign bits")
		inferNeg      = flag.Bool("infer-neg", false, "oracle: provably negative")
		inferNonNeg   = flag.Bool("infer-non-neg", false, "oracle: provably non-negative")
		inferNonZero  = flag.Bool("infer-non-zero", false, "oracle: provably non-zero")
		inferPow2     = flag.Bool("infer-power-two", false, "oracle: provably a power of two")
		inferRange    = flag.Bool("infer-range", false, "oracle: maximally precise integer range")
		inferDemanded = flag.Bool("infer-demanded-bits", false, "oracle: demanded bits per input")

		printKnown    = flag.Bool("print-known-at-return", false, "compiler: known bits")
		printSign     = flag.Bool("print-sign-bits-at-return", false, "compiler: sign bits")
		printNeg      = flag.Bool("print-neg-at-return", false, "compiler: negative")
		printNonNeg   = flag.Bool("print-nonneg-at-return", false, "compiler: non-negative")
		printNonZero  = flag.Bool("print-non-zero-at-return", false, "compiler: non-zero")
		printPow2     = flag.Bool("print-power-two-at-return", false, "compiler: power of two")
		printRange    = flag.Bool("print-range-at-return", false, "compiler: integer range")
		printDemanded = flag.Bool("print-demanded-bits-from-harvester", false, "compiler: demanded bits")

		compareAll = flag.Bool("compare", false, "run every analysis on both sides and classify")
		optimize   = flag.Bool("optimize", false, "print the expression after fact-driven optimization (baseline facts)")
		optPrecise = flag.Bool("optimize-precise", false, "like -optimize but with the maximally precise oracle facts (slow, §4.6)")
		emitLLVM   = flag.Bool("emit-llvm", false, "print the expression in LLVM-like syntax (souper2llvm) and exit")
		budget     = flag.Int64("solver-budget", 0, "per-query conflict budget (0 = default, stands in for the paper's 30s Z3 timeout)")
		bug1       = flag.Bool("bug1", false, "re-introduce the r124183 isKnownNonZero bug")
		bug2       = flag.Bool("bug2", false, "re-introduce the PR23011 srem sign-bits bug")
		bug3       = flag.Bool("bug3", false, "re-introduce the PR12541 srem known-bits bug")
		modern     = flag.Bool("modern", false, "use the post-LLVM-8 compiler (§4.8 improvements applied)")
	)
	flag.Parse()

	src, err := readInput(flag.Args())
	if err != nil {
		fatal(err)
	}
	f, err := core.ParseAuto(src)
	if err != nil {
		fatal(err)
	}
	bugs := llvmport.BugConfig{NonZeroAdd: *bug1, SRemSignBits: *bug2, SRemKnownBits: *bug3}

	if *emitLLVM {
		fmt.Print(llvmir.Print(f))
		return
	}
	if *optimize || *optPrecise {
		var src opt.FactSource
		if *optPrecise {
			src = opt.NewOracleSource(f, *budget)
		} else {
			src = opt.NewBaselineSource(f)
		}
		optimized := opt.Optimize(f, src)
		fmt.Printf("; %d instructions before, %d after\n", f.NumInsts(), optimized.NumInsts())
		fmt.Print(optimized)
		return
	}
	if *compareAll {
		results := core.Check(f, core.Options{Budget: *budget, Bugs: bugs, Modern: *modern})
		fmt.Print(core.FormatResults(f, results))
		return
	}

	fa := core.CompilerFactsWith(f, llvmport.Analyzer{Bugs: bugs, Modern: *modern})
	eng := func() solver.Engine { return solver.NewSAT(f, *budget) }
	printed := false
	show := func(label, value string) {
		fmt.Printf("%s: %s\n", label, value)
		printed = true
	}

	if *inferKnown {
		r := oracle.KnownBits(eng(), f)
		show("known bits from our tool", r.Bits.String()+exhaustedSuffix(r.Exhausted))
	}
	if *inferSign {
		r := oracle.SignBits(eng(), f)
		show("known sign bits from our tool", fmt.Sprint(r.NumSignBits)+exhaustedSuffix(r.Exhausted))
	}
	if *inferNeg {
		r := oracle.Negative(eng(), f)
		show("negative from our tool", fmt.Sprint(r.Proved)+exhaustedSuffix(r.Exhausted))
	}
	if *inferNonNeg {
		r := oracle.NonNegative(eng(), f)
		show("non-negative from our tool", fmt.Sprint(r.Proved)+exhaustedSuffix(r.Exhausted))
	}
	if *inferNonZero {
		r := oracle.NonZero(eng(), f)
		show("non-zero from our tool", fmt.Sprint(r.Proved)+exhaustedSuffix(r.Exhausted))
	}
	if *inferPow2 {
		r := oracle.PowerOfTwo(eng(), f)
		show("power of two from our tool", fmt.Sprint(r.Proved)+exhaustedSuffix(r.Exhausted))
	}
	if *inferRange {
		r := oracle.IntegerRange(eng(), f)
		show("range from our tool", r.Range.String()+exhaustedSuffix(r.Exhausted))
	}
	if *inferDemanded {
		r := oracle.DemandedBits(eng(), f)
		for _, name := range f.SortedVarNames() {
			show("demanded bits from our tool for %"+name, r.Demanded[name].BitString())
		}
	}

	if *printKnown {
		show("known bits from llvm", fa.KnownBits().String())
	}
	if *printSign {
		show("known sign bits from llvm", fmt.Sprint(fa.NumSignBits()))
	}
	if *printNeg {
		show("negative from llvm", fmt.Sprint(fa.Negative()))
	}
	if *printNonNeg {
		show("non-negative from llvm", fmt.Sprint(fa.NonNegative()))
	}
	if *printNonZero {
		show("non-zero from llvm", fmt.Sprint(fa.NonZero()))
	}
	if *printPow2 {
		show("power of two from llvm", fmt.Sprint(fa.PowerOfTwo()))
	}
	if *printRange {
		show("range from llvm", fa.Range().String())
	}
	if *printDemanded {
		d := fa.DemandedBits()
		for _, name := range f.SortedVarNames() {
			show("demanded bits from llvm for %"+name, d[name].BitString())
		}
	}

	if !printed {
		fmt.Fprintln(os.Stderr, "no analysis selected; see -help (e.g. -infer-known-bits, -compare)")
		os.Exit(2)
	}
}

func exhaustedSuffix(ex bool) string {
	if ex {
		return " (resource exhaustion: sound but possibly imprecise)"
	}
	return ""
}

func readInput(args []string) (string, error) {
	if len(args) == 0 {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(args[0])
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "souper-check:", err)
	os.Exit(1)
}
