// Command domain-check exhaustively verifies the transfer functions of
// the compiler under test (internal/llvmport) for soundness and maximal
// precision at small bit widths, and cross-checks the four abstract
// domains against each other for consistency. It is the solver-free
// counterpart to dfcheck-fuzz: no SAT query is issued — every abstract
// output is graded against the fully enumerated concrete image, so a
// reported unsoundness comes with a concrete counterexample and a
// minimal abstract witness.
//
//	domain-check                 # clean LLVM-8 port, widths 1..4
//	domain-check -w 6 -bug2      # re-broken ComputeNumSignBits, widths 1..6
//	domain-check -ops add,srem   # restrict the sweep to two ops
//	domain-check -domains tnum,stride  # sweep only the transfer domains
//	domain-check -list           # print the registered domains and exit
//
// Exit status is 1 when any soundness or consistency finding survives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dfcheck/internal/absint"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
	"dfcheck/internal/tnum"
)

func main() {
	var (
		maxW       = flag.Uint("w", 4, "max operand width to sweep (clamped to 6)")
		minW       = flag.Uint("min-w", 1, "min operand width to sweep")
		maxRangeW  = flag.Uint("max-range-width", 4, "max width for the integer-range input sweep (element count grows as 4^w)")
		workers    = flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
		opsFlag    = flag.String("ops", "", "comma-separated op names to sweep (default: all)")
		domsFlag   = flag.String("domains", "", "comma-separated domains to sweep (default: all registered; see -list)")
		list       = flag.Bool("list", false, "print the registered domain names and exit")
		lint       = flag.Bool("consistency", true, "cross-check domains against each other on every harness expression")
		jsonOut    = flag.Bool("json", false, "emit the full report as JSON")
		verbose    = flag.Bool("v", false, "print every per-width stat row, not just the per-op table")
		quiet      = flag.Bool("q", false, "print findings only")
		bug1       = flag.Bool("bug1", false, "re-introduce the r124183 isKnownNonZero add bug")
		bug2       = flag.Bool("bug2", false, "re-introduce the PR23011 ComputeNumSignBits srem bug")
		bug3       = flag.Bool("bug3", false, "re-introduce the PR12541 computeKnownBits srem bug")
		bugTnumMul = flag.Bool("bug-tnum-mul", false, "seed the off-by-one tnum multiply mask bug")
		modern     = flag.Bool("modern", false, "test the post-LLVM-8 analyzer instead of the LLVM-8 port")
		noProgress = flag.Bool("no-progress", false, "suppress the progress line")
		noSliced   = flag.Bool("no-sliced", false, "ablation: grade against scalar per-input evaluation instead of the 64-lane bit-sliced sweep")
	)
	flag.Parse()

	if *list {
		for _, d := range absint.AllInputDomains() {
			fmt.Println(strings.ReplaceAll(d.Name(), " ", "-"))
		}
		return
	}

	doms, err := absint.DomainsByNames(*domsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "domain-check: %v (see -list)\n", err)
		os.Exit(2)
	}
	if doms == nil {
		doms = absint.AllInputDomains()
	}
	if *bugTnumMul {
		for i, d := range doms {
			if d.Name() == "tnum" {
				doms[i] = absint.TnumsWithBugs(tnum.Bugs{MulMask: true})
			}
		}
	}

	cfg := absint.Config{
		Analyzer: &llvmport.Analyzer{
			Bugs: llvmport.BugConfig{
				NonZeroAdd:    *bug1,
				SRemSignBits:  *bug2,
				SRemKnownBits: *bug3,
			},
			Modern: *modern,
		},
		MinWidth:      *minW,
		MaxWidth:      *maxW,
		MaxRangeWidth: *maxRangeW,
		Workers:       *workers,
		Lint:          *lint,
		NoSliced:      *noSliced,
		Domains:       doms,
	}
	if *opsFlag != "" {
		for _, name := range strings.Split(*opsFlag, ",") {
			op, ok := ir.OpFromName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "domain-check: unknown op %q\n", name)
				os.Exit(2)
			}
			cfg.Ops = append(cfg.Ops, op)
		}
	}
	if !*noProgress && !*jsonOut {
		cfg.Progress = func(done, total int) {
			if done == total || done%50 == 0 {
				fmt.Fprintf(os.Stderr, "\rdomain-check: %d/%d tasks", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	start := time.Now()
	rep := absint.Verify(cfg)
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "domain-check: %v\n", err)
			os.Exit(2)
		}
	} else {
		if !*quiet {
			if *verbose {
				fmt.Printf("%-18s %-10s %-14s %-14s %10s %10s %10s %8s %6s\n",
					"OP", "WIDTH", "INPUT", "DOMAIN", "TUPLES", "PRECISE", "IMPRECISE", "UNSOUND", "DEAD")
				for _, st := range rep.Stats {
					fmt.Printf("%-18s %-10s %-14s %-14s %10d %10d %10d %8d %6d\n",
						st.Op, st.Width, st.InDomain, st.Domain, st.Tuples, st.Precise, st.Imprecise, st.Unsound, st.Dead)
				}
				fmt.Println()
			}
			fmt.Print(rep.OpTable())
			fmt.Println()
			fmt.Print(rep.Summary())
			fmt.Printf("wall clock: %s, SAT queries: 0\n", elapsed.Round(time.Millisecond))
		}
		if len(rep.Findings) > 0 {
			fmt.Printf("\nFINDINGS (%d)\n", len(rep.Findings))
			for _, w := range rep.Findings {
				fmt.Printf("  %s\n", w)
			}
		} else if !*quiet {
			fmt.Println("no soundness or consistency findings")
		}
	}
	if !rep.Sound() {
		os.Exit(1)
	}
}
