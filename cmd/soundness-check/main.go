// soundness-check regenerates §4.7: it re-introduces each of the three
// previously-fixed LLVM soundness bugs into the compiler under test, runs
// the comparator on the paper's trigger expressions, and shows the tool
// catching every bug ("llvm is stronger"). It also verifies the clean
// compiler is NOT flagged on the same triggers.
package main

import (
	"flag"
	"fmt"
	"os"

	"dfcheck/internal/compare"
	"dfcheck/internal/harvest"
	"dfcheck/internal/ir"
	"dfcheck/internal/llvmport"
)

func main() {
	budget := flag.Int64("solver-budget", 0, "per-query conflict budget")
	flag.Parse()

	ok := true
	for _, tr := range harvest.SoundnessTriggers {
		var bugs llvmport.BugConfig
		var patch string
		switch tr.Bug {
		case 1:
			bugs.NonZeroAdd = true
			patch = "r124183 (fixed in r124184/r124188)"
		case 2:
			bugs.SRemSignBits = true
			patch = "PR23011 (fixed in r233225)"
		case 3:
			bugs.SRemKnownBits = true
			patch = "PR12541 (fixed in r155818)"
		}
		fmt.Printf("=== Soundness bug %d: %s — %s ===\n\n", tr.Bug, tr.Name, patch)

		f := ir.MustParse(tr.Source)
		buggy := &compare.Comparator{Analyzer: &llvmport.Analyzer{Bugs: bugs}, Budget: *budget}
		caught := false
		for _, r := range buggy.CompareExpr(f) {
			if r.Analysis != tr.Analysis {
				continue
			}
			fmt.Print(f.String())
			fmt.Printf("%s from our tool: %s\n", r.Analysis, r.OracleFact)
			fmt.Printf("%s from llvm: %s\n", r.Analysis, r.LLVMFact)
			if r.Outcome == compare.LLVMMorePrecise {
				fmt.Println("llvm is stronger  [BUG DETECTED]")
				caught = true
			} else {
				fmt.Printf("-> %s  [BUG MISSED]\n", r.Outcome)
			}
		}
		if !caught {
			ok = false
		}

		clean := &compare.Comparator{Analyzer: &llvmport.Analyzer{}, Budget: *budget}
		for _, r := range clean.CompareExpr(ir.MustParse(tr.Source)) {
			if r.Analysis != tr.Analysis {
				continue
			}
			if r.Outcome == compare.LLVMMorePrecise {
				fmt.Println("clean compiler incorrectly flagged!")
				ok = false
			} else {
				fmt.Printf("\n(clean compiler on the same trigger: %s — as expected)\n", r.Outcome)
			}
		}
		fmt.Println()
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "soundness-check: FAILED")
		os.Exit(1)
	}
	fmt.Println("All three re-introduced bugs detected; clean compiler not flagged.")
}
