package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchRejectsNonFinite(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8 100 NaN ns/op",
		"BenchmarkX-8 100 +Inf ns/op",
		"BenchmarkX-8 100 -Inf ns/op",
	} {
		if _, err := parseBench(strings.NewReader(line)); err == nil {
			t.Errorf("%q: non-finite value accepted; it would poison the JSON artifact", line)
		}
	}
	got, err := parseBench(strings.NewReader("BenchmarkX-8 100 42.5 ns/op"))
	if err != nil || got["BenchmarkX"]["ns/op"] != 42.5 {
		t.Fatalf("finite line rejected: %v %v", got, err)
	}
}

func TestCompareArtifactsSpeedup(t *testing.T) {
	old := writeArtifact(t, "old.json", `{"current":{"BenchmarkA":{"ns/op":100}}}`)
	cur := writeArtifact(t, "new.json", `{"current":{"BenchmarkA":{"ns/op":50}}}`)
	var sb strings.Builder
	if err := compareArtifacts(&sb, old, cur, "current"); err != nil {
		t.Fatalf("healthy comparison failed: %v", err)
	}
	if !strings.Contains(sb.String(), "2.00x") {
		t.Fatalf("speedup not reported:\n%s", sb.String())
	}
}

// TestCompareArtifactsMissingBaseline: a benchmark with no baseline entry
// must be marked, not silently skipped, and the comparison must fail so
// CI notices a truncated baseline artifact.
func TestCompareArtifactsMissingBaseline(t *testing.T) {
	old := writeArtifact(t, "old.json", `{"current":{"BenchmarkA":{"ns/op":100}}}`)
	cur := writeArtifact(t, "new.json", `{"current":{"BenchmarkA":{"ns/op":50},"BenchmarkB":{"ns/op":10}}}`)
	var sb strings.Builder
	err := compareArtifacts(&sb, old, cur, "current")
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("missing baseline entry not an error: %v", err)
	}
	if !strings.Contains(sb.String(), "baseline-missing") {
		t.Fatalf("missing baseline not marked:\n%s", sb.String())
	}
}

// TestCompareArtifactsZeroBaseline: a zero (or, via JSON, absent) ns/op
// baseline must never become a +Inf speedup.
func TestCompareArtifactsZeroBaseline(t *testing.T) {
	old := writeArtifact(t, "old.json", `{"current":{"BenchmarkA":{"ns/op":0},"BenchmarkB":{"iterations":5}}}`)
	cur := writeArtifact(t, "new.json", `{"current":{"BenchmarkA":{"ns/op":50},"BenchmarkB":{"ns/op":10}}}`)
	var sb strings.Builder
	err := compareArtifacts(&sb, old, cur, "current")
	if err == nil || !strings.Contains(err.Error(), "2 benchmark(s)") {
		t.Fatalf("unusable baselines not counted: %v", err)
	}
	out := sb.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("non-finite ratio printed:\n%s", out)
	}
	if got := strings.Count(out, "baseline-missing"); got != 2 {
		t.Fatalf("%d baseline-missing markers, want 2:\n%s", got, out)
	}
}

// TestCompareArtifactsGoneIsNotAnError: a benchmark removed in the new
// recording is informational, not a baseline failure.
func TestCompareArtifactsGoneIsNotAnError(t *testing.T) {
	old := writeArtifact(t, "old.json", `{"current":{"BenchmarkA":{"ns/op":100},"BenchmarkB":{"ns/op":10}}}`)
	cur := writeArtifact(t, "new.json", `{"current":{"BenchmarkA":{"ns/op":50}}}`)
	var sb strings.Builder
	if err := compareArtifacts(&sb, old, cur, "current"); err != nil {
		t.Fatalf("gone benchmark failed the comparison: %v", err)
	}
	if !strings.Contains(sb.String(), "gone") {
		t.Fatalf("gone benchmark not listed:\n%s", sb.String())
	}
}

func TestCompareArtifactsMissingSection(t *testing.T) {
	old := writeArtifact(t, "old.json", `{"baseline":{"BenchmarkA":{"ns/op":100}}}`)
	cur := writeArtifact(t, "new.json", `{"current":{"BenchmarkA":{"ns/op":50}}}`)
	var sb strings.Builder
	if err := compareArtifacts(&sb, old, cur, "current"); err == nil {
		t.Fatal("missing section not rejected")
	}
}
