// bench-json converts `go test -bench` output into a stable JSON artifact
// so benchmark runs can be diffed across commits. Each benchmark line
// becomes a name → {unit → value} object, including Go's built-in ns/op,
// B/op, and allocs/op as well as the custom solver metrics the benchmarks
// report (gates/op, clauses/op, pruned-queries/op, enum-queries/op, ...).
//
// The output file holds named sections (typically "baseline" recorded
// before an optimization and "current" after), merged across invocations:
//
//	go test -run NONE -bench Table1 -benchmem . | bench-json -out BENCH.json -as current
//
// The -compare mode reads two recorded artifacts instead of benchmark
// output and prints per-benchmark speedup ratios (old ns/op over new),
// so a PR can state "N× on row X vs the committed artifact" from data:
//
//	bench-json -compare BENCH_3.json -out BENCH_6.json -as current
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var nameSuffix = regexp.MustCompile(`-\d+$`) // the -GOMAXPROCS suffix

// parseBench extracts benchmark result lines from go test output.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := nameSuffix.ReplaceAllString(fields[0], "")
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			// json.Marshal rejects NaN/Inf outright; catch them here with
			// the offending line so the artifact is never half-written.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("non-finite value %q in line %q", fields[i], line)
			}
			m[fields[i+1]] = v
		}
		out[name] = m
	}
	return out, sc.Err()
}

// loadSection reads one named section out of a bench-json artifact.
func loadSection(file, section string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	doc := make(map[string]map[string]map[string]float64)
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s is not a bench-json artifact: %v", file, err)
	}
	sec, ok := doc[section]
	if !ok {
		return nil, fmt.Errorf("%s has no %q section", file, section)
	}
	return sec, nil
}

// usableBaseline reports whether an old-artifact ns/op can serve as a
// ratio denominator: present, finite, and positive. A zero or NaN
// baseline would print a +Inf/NaN "speedup", which then gets pasted into
// PR descriptions as if it meant something.
func usableBaseline(m map[string]float64) bool {
	v, ok := m["ns/op"]
	return ok && !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// compareArtifacts prints the per-benchmark speedup of newFile over
// oldFile (same section in both): ratios above 1 mean the new recording
// is faster. Benchmarks whose baseline is missing or unusable (absent
// entry, zero or non-finite ns/op) are marked "baseline-missing" and make
// the comparison fail, so CI can't silently report speedups against a
// truncated or corrupt baseline artifact; benchmarks that disappeared
// from the new recording are listed as "gone" but are not an error.
func compareArtifacts(w io.Writer, oldFile, newFile, section string) error {
	oldSec, err := loadSection(oldFile, section)
	if err != nil {
		return err
	}
	newSec, err := loadSection(newFile, section)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldSec)+len(newSec))
	for n := range oldSec {
		names = append(names, n)
	}
	for n := range newSec {
		if _, ok := oldSec[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	missing := 0
	fmt.Fprintf(w, "%-45s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup")
	for _, n := range names {
		o, inOld := oldSec[n]
		c, inNew := newSec[n]
		switch {
		case !inOld:
			missing++
			fmt.Fprintf(w, "%-45s %14s %14.0f %9s\n", n, "-", c["ns/op"], "baseline-missing")
		case !inNew:
			fmt.Fprintf(w, "%-45s %14.0f %14s %9s\n", n, o["ns/op"], "-", "gone")
		case !usableBaseline(o):
			missing++
			fmt.Fprintf(w, "%-45s %14.0f %14.0f %9s\n", n, o["ns/op"], c["ns/op"], "baseline-missing")
		case c["ns/op"] == 0:
			fmt.Fprintf(w, "%-45s %14.0f %14.0f %9s\n", n, o["ns/op"], c["ns/op"], "?")
		default:
			fmt.Fprintf(w, "%-45s %14.0f %14.0f %8.2fx\n", n, o["ns/op"], c["ns/op"], o["ns/op"]/c["ns/op"])
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d benchmark(s) lack a usable baseline in %s", missing, oldFile)
	}
	return nil
}

func main() {
	var (
		outFile = flag.String("out", "BENCH_3.json", "JSON artifact to create or merge into")
		section = flag.String("as", "current", "section to record the parsed results under (e.g. baseline, current)")
		inFile  = flag.String("in", "-", "benchmark output to parse (- = stdin)")
		compare = flag.String("compare", "", "old artifact to diff against: print old/new ns/op speedups between its -as section and -out's, recording nothing")
	)
	flag.Parse()

	if *compare != "" {
		if err := compareArtifacts(os.Stdout, *compare, *outFile, *section); err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if *inFile != "-" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	parsed, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-json:", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "bench-json: no benchmark lines found in input")
		os.Exit(1)
	}

	doc := make(map[string]map[string]map[string]float64)
	if data, err := os.ReadFile(*outFile); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %s exists but is not a bench-json artifact: %v\n", *outFile, err)
			os.Exit(1)
		}
	}
	doc[*section] = parsed

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-json:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench-json:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("recorded %d benchmarks under %q in %s\n", len(names), *section, *outFile)
	for _, n := range names {
		fmt.Printf("  %-45s %12.0f ns/op\n", n, parsed[n]["ns/op"])
	}
}
