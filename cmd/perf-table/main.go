// perf-table regenerates the paper's Table 2: the impact of maximally
// precise dataflow facts on generated code. The baseline compiler
// optimizes each synthetic kernel with the LLVM-port facts; the precise
// compiler uses the solver-based oracle. Both results run under two
// machine cycle models standing in for the paper's AMD and Intel hosts.
package main

import (
	"flag"
	"fmt"
	"os"

	"dfcheck/internal/opt"
)

func main() {
	var (
		workload = flag.Int("workload", 1000, "inputs per kernel")
		budget   = flag.Int64("solver-budget", 0, "per-query conflict budget for the precise compiler")
	)
	flag.Parse()

	rows, err := opt.RunTable2(*budget, *workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perf-table:", err)
		os.Exit(1)
	}

	fmt.Println("Table 2: impact of maximally precise dataflow facts on generated code.")
	fmt.Println("The baseline compiler uses the LLVM-port analyses; the precise compiler")
	fmt.Println("uses the solver-based oracle (and is, as §4.6 warns, much slower).")
	fmt.Println()
	fmt.Printf("%-18s %-7s %14s %14s %10s %14s %14s\n",
		"Benchmark", "Machine", "Baseline cyc", "Precise cyc", "Speedup", "Base compile", "Precise compile")
	for _, r := range rows {
		fmt.Printf("%-18s %-7s %14d %14d %+9.2f%% %14s %14s\n",
			r.Benchmark, r.Machine, r.BaselineCycles, r.PreciseCycles, r.SpeedupPct,
			r.BaselineOptTime.Round(1000), r.PreciseOptTime.Round(1000))
	}
}
